"""Pluggable eviction policies for the cache manager.

The paper's cache manager uses standard LRU at object granularity (§V).
Replacement is orthogonal to Reo's redundancy/recovery contributions, so the
manager accepts any policy implementing the small :class:`EvictionPolicy`
protocol; the alternatives here (FIFO, LFU, CLOCK) exist to demonstrate that
orthogonality in the ablation harness.

Protocol: ``touch`` records an access (inserting the key if new), ``discard``
drops a key, iteration yields keys in *eviction order* (best victim first),
and ``pop_victim`` removes and returns the best victim.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Iterator, TypeVar

from repro.cache.lru import LruQueue

__all__ = [
    "ArcPolicy",
    "ClockPolicy",
    "EvictionPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "LruPolicy",
    "make_eviction_policy",
]

K = TypeVar("K")


class EvictionPolicy(Generic[K]):
    """Interface the cache manager drives."""

    name: str = "abstract"

    def touch(self, key: K) -> None:
        """Record an access; inserts the key if it is new."""
        raise NotImplementedError

    def discard(self, key: K) -> None:
        """Forget a key if present."""
        raise NotImplementedError

    def pop_victim(self) -> K:
        """Remove and return the best eviction victim.

        Raises:
            KeyError: the policy tracks no keys.
        """
        raise NotImplementedError

    def __iter__(self) -> Iterator[K]:
        """Keys in eviction order (best victim first)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: K) -> bool:
        raise NotImplementedError


class LruPolicy(EvictionPolicy[K]):
    """Least-recently-used — the paper's replacement algorithm."""

    name = "lru"

    def __init__(self) -> None:
        self._queue: LruQueue[K] = LruQueue()

    def touch(self, key: K) -> None:
        self._queue.touch(key)

    def discard(self, key: K) -> None:
        self._queue.discard(key)

    def pop_victim(self) -> K:
        return self._queue.pop_lru()

    def __iter__(self) -> Iterator[K]:
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, key: K) -> bool:
        return key in self._queue


class FifoPolicy(EvictionPolicy[K]):
    """First-in-first-out: age since admission, accesses ignored."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: "OrderedDict[K, None]" = OrderedDict()

    def touch(self, key: K) -> None:
        if key not in self._queue:
            self._queue[key] = None

    def discard(self, key: K) -> None:
        self._queue.pop(key, None)

    def pop_victim(self) -> K:
        key, _ = self._queue.popitem(last=False)
        return key

    def __iter__(self) -> Iterator[K]:
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, key: K) -> bool:
        return key in self._queue


class LfuPolicy(EvictionPolicy[K]):
    """Least-frequently-used, ties broken by recency (older first)."""

    name = "lfu"

    def __init__(self) -> None:
        self._freq: Dict[K, int] = {}
        self._recency: "OrderedDict[K, None]" = OrderedDict()

    def touch(self, key: K) -> None:
        self._freq[key] = self._freq.get(key, 0) + 1
        if key in self._recency:
            self._recency.move_to_end(key)
        else:
            self._recency[key] = None

    def discard(self, key: K) -> None:
        self._freq.pop(key, None)
        self._recency.pop(key, None)

    def pop_victim(self) -> K:
        victim = next(iter(self))
        self.discard(victim)
        return victim

    def __iter__(self) -> Iterator[K]:
        recency_rank = {key: rank for rank, key in enumerate(self._recency)}
        ordered = sorted(
            self._freq, key=lambda key: (self._freq[key], recency_rank[key])
        )
        return iter(ordered)

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, key: K) -> bool:
        return key in self._freq


class ClockPolicy(EvictionPolicy[K]):
    """CLOCK (second-chance): a one-bit LRU approximation.

    Keys sit on a circular list with a reference bit set on access; the hand
    sweeps, clearing bits, and evicts the first unreferenced key.
    """

    name = "clock"

    def __init__(self) -> None:
        self._referenced: "OrderedDict[K, bool]" = OrderedDict()

    def touch(self, key: K) -> None:
        if key in self._referenced:
            self._referenced[key] = True
        else:
            self._referenced[key] = False  # inserted behind the hand

    def discard(self, key: K) -> None:
        self._referenced.pop(key, None)

    def pop_victim(self) -> K:
        if not self._referenced:
            raise KeyError("clock is empty")
        while True:
            key, referenced = next(iter(self._referenced.items()))
            if referenced:
                # Second chance: clear the bit, move behind the hand.
                self._referenced[key] = False
                self._referenced.move_to_end(key)
            else:
                del self._referenced[key]
                return key

    def __iter__(self) -> Iterator[K]:
        # Victim preference: unreferenced in hand order, then referenced.
        unreferenced = (k for k, bit in self._referenced.items() if not bit)
        referenced = (k for k, bit in self._referenced.items() if bit)
        yield from unreferenced
        yield from referenced

    def __len__(self) -> int:
        return len(self._referenced)

    def __contains__(self, key: K) -> bool:
        return key in self._referenced


class ArcPolicy(EvictionPolicy[K]):
    """ARC (Adaptive Replacement Cache), Megiddo & Modha, FAST'03.

    Balances recency (T1) against frequency (T2) with ghost lists (B1, B2)
    steering the adaptation target ``p``: a hit in B1 says "recency was
    evicted too eagerly" and grows ``p``; a hit in B2 shrinks it.

    Simplification: the classic algorithm knows the cache size ``c`` in
    entries; an object cache's capacity is in bytes, so ``c`` is taken as
    the current resident count, which bounds the ghost lists and the
    adaptation range dynamically.
    """

    name = "arc"

    def __init__(self) -> None:
        self._t1: "OrderedDict[K, None]" = OrderedDict()  # recent, seen once
        self._t2: "OrderedDict[K, None]" = OrderedDict()  # frequent
        self._b1: "OrderedDict[K, None]" = OrderedDict()  # ghosts of T1
        self._b2: "OrderedDict[K, None]" = OrderedDict()  # ghosts of T2
        self._p = 0.0

    @property
    def _c(self) -> int:
        return max(1, len(self._t1) + len(self._t2))

    def touch(self, key: K) -> None:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
        elif key in self._t2:
            self._t2.move_to_end(key)
        elif key in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(self._p + delta, self._c)
            del self._b1[key]
            self._t2[key] = None
        elif key in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(self._p - delta, 0.0)
            del self._b2[key]
            self._t2[key] = None
        else:
            self._t1[key] = None
        self._trim_ghosts()

    def discard(self, key: K) -> None:
        for queue in (self._t1, self._t2, self._b1, self._b2):
            queue.pop(key, None)

    def pop_victim(self) -> K:
        if not self._t1 and not self._t2:
            raise KeyError("ARC is empty")
        if self._t1 and (len(self._t1) > self._p or not self._t2):
            key, _ = self._t1.popitem(last=False)
            self._b1[key] = None
        else:
            key, _ = self._t2.popitem(last=False)
            self._b2[key] = None
        self._trim_ghosts()
        return key

    def _trim_ghosts(self) -> None:
        limit = self._c
        while len(self._b1) > limit:
            self._b1.popitem(last=False)
        while len(self._b2) > limit:
            self._b2.popitem(last=False)

    def __iter__(self) -> Iterator[K]:
        # Victim preference mirrors pop_victim's side choice.
        if self._t1 and (len(self._t1) > self._p or not self._t2):
            yield from self._t1
            yield from self._t2
        else:
            yield from self._t2
            yield from self._t1

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: K) -> bool:
        return key in self._t1 or key in self._t2


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "lfu": LfuPolicy,
    "clock": ClockPolicy,
    "arc": ArcPolicy,
}


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Factory by name: ``lru`` (default), ``fifo``, ``lfu``, ``clock``."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; pick one of {sorted(_POLICIES)}"
        ) from None
