"""Object-based cache manager substrate (paper §V, initiator side)."""

from repro.cache.lru import LruQueue
from repro.cache.manager import AccessResult, CacheManager, CachedObject
from repro.cache.stats import CacheStats

__all__ = ["AccessResult", "CacheManager", "CachedObject", "CacheStats", "LruQueue"]
