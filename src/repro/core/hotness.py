"""``H = Freq / Size`` hotness tracking with the adaptive threshold (§IV-C.1).

Every cached object carries a read-frequency counter (reset when the object
enters the cache). Its hotness indicator is ``H = Freq / Size``: frequently
read objects matter more, and — given equal frequency — smaller objects win
because protecting them buys more hit ratio per redundancy byte.

The hot/cold cutoff ``H_hot`` is adaptive: sort objects by H descending and
greedily mark them hot until the projected redundancy overhead of the hot
set fills the reserved parity budget; ``H_hot`` is the H value of the last
admitted object. The threshold is recomputed periodically so it follows the
workload.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

__all__ = ["HotnessTracker"]


@dataclass
class _Heat:
    size: int
    freq: int = 0
    #: ``size ** size_exponent`` precomputed at registration.
    weight: float = 1.0

    @property
    def h_value(self) -> float:
        if self.size <= 0:
            return 0.0
        return self.freq / self.weight


class HotnessTracker:
    """Tracks per-object read frequency and the adaptive ``H_hot`` cutoff.

    The paper counts ``Freq`` "since [the object] enters the cache". Under
    heavy LRU churn that would reset a popular object's history on every
    re-admission and make the hot set oscillate, so the tracker keeps a
    bounded *ghost* history: an evicted object's frequency is remembered
    (and halved, as an aging step) and restored when it re-enters the cache.
    DESIGN.md records this as an engineering deviation.
    """

    def __init__(self, ghost_capacity: int = 16_384, size_exponent: float = 1.0) -> None:
        """
        Args:
            ghost_capacity: evicted-object histories to remember.
            size_exponent: exponent on the size term of ``H = Freq/Size``.
                1.0 is the paper's indicator; 0.0 gives the size-blind
                ``H = Freq`` variant used by the ablation study.
        """
        if ghost_capacity < 0:
            raise ValueError("ghost capacity cannot be negative")
        if size_exponent < 0:
            raise ValueError("size exponent cannot be negative")
        self.size_exponent = size_exponent
        self._heat: Dict[Hashable, _Heat] = {}
        self._ghosts: "OrderedDict[Hashable, int]" = OrderedDict()
        self.ghost_capacity = ghost_capacity
        #: Nothing is hot until the first threshold update runs.
        self.threshold: float = math.inf
        self.updates = 0

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def register(self, key: Hashable, size: int, initial_freq: int = 1) -> None:
        """Start tracking an object that just entered the cache.

        A ghost entry (from a prior eviction) seeds the frequency, so
        popular objects regain their hot standing immediately.
        """
        if size < 0:
            raise ValueError("object size cannot be negative")
        remembered = self._ghosts.pop(key, 0)
        self._heat[key] = _Heat(
            size=size,
            freq=remembered + initial_freq,
            weight=self._weight(size),
        )

    def forget(self, key: Hashable) -> None:
        """Stop tracking an evicted or lost object, keeping a decayed ghost."""
        heat = self._heat.pop(key, None)
        if heat is None or self.ghost_capacity == 0:
            return
        decayed = heat.freq // 2
        if decayed > 0:
            self._ghosts[key] = decayed
            self._ghosts.move_to_end(key)
            while len(self._ghosts) > self.ghost_capacity:
                self._ghosts.popitem(last=False)

    def record_read(self, key: Hashable) -> None:
        """Count one cache read of a tracked object."""
        heat = self._heat.get(key)
        if heat is not None:
            heat.freq += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._heat

    def __len__(self) -> int:
        return len(self._heat)

    def h_value(self, key: Hashable) -> float:
        """Current ``Freq / Size`` for a tracked object (0 if unknown)."""
        heat = self._heat.get(key)
        return heat.h_value if heat is not None else 0.0

    def freq(self, key: Hashable) -> int:
        heat = self._heat.get(key)
        return heat.freq if heat is not None else 0

    def is_hot(self, key: Hashable) -> bool:
        """True when the object's H value clears the current threshold."""
        heat = self._heat.get(key)
        if heat is None:
            return False
        return heat.h_value >= self.threshold

    def projected_h(self, key: Hashable, size: int, initial_freq: int = 1) -> float:
        """The H value the object would have right after (re-)admission.

        Consults the ghost history, so a popular object about to re-enter
        the cache is recognised as hot *at insert time* rather than only at
        the next periodic reclassification.
        """
        if size <= 0:
            return 0.0
        return (self._ghosts.get(key, 0) + initial_freq) / self._weight(size)

    def would_be_hot(self, key: Hashable, size: int) -> bool:
        """Insert-time hot check against the current threshold."""
        return self.projected_h(key, size) >= self.threshold

    # ------------------------------------------------------------------
    # Adaptive threshold (paper §IV-C.1)
    # ------------------------------------------------------------------
    def update_threshold(
        self, budget_bytes: float, overhead_per_byte: float
    ) -> float:
        """Recompute ``H_hot`` against the available redundancy budget.

        Args:
            budget_bytes: redundancy bytes still available for protecting
                hot objects (the reserve minus what metadata/dirty replicas
                already consume).
            overhead_per_byte: extra stored bytes per logical byte when an
                object is promoted to the hot scheme (e.g. ``2/3`` for
                2-parity stripes on a five-wide array).

        Returns:
            The new threshold. With no budget at all, the threshold is
            ``inf`` (nothing is hot); if every object fits, it is the
            smallest positive H value seen.
        """
        self.updates += 1
        if budget_bytes <= 0 or overhead_per_byte < 0:
            self.threshold = math.inf
            return self.threshold
        ranked: List[Tuple[float, int]] = sorted(
            ((heat.h_value, heat.size) for heat in self._heat.values()),
            reverse=True,
        )
        spent = 0.0
        cutoff = math.inf
        for h_value, size in ranked:
            if h_value <= 0.0:
                break
            cost = size * overhead_per_byte
            if spent + cost > budget_bytes:
                break
            spent += cost
            cutoff = h_value
        self.threshold = cutoff
        return cutoff

    def _weight(self, size: int) -> float:
        if self.size_exponent == 1.0:
            return float(size) if size > 0 else 1.0
        if self.size_exponent == 0.0:
            return 1.0
        return float(size) ** self.size_exponent if size > 0 else 1.0

    def hot_keys(self) -> List[Hashable]:
        """Keys currently at or above the threshold."""
        return [key for key, heat in self._heat.items() if heat.h_value >= self.threshold]

    def __repr__(self) -> str:
        return f"HotnessTracker(objects={len(self._heat)}, threshold={self.threshold})"
