"""Bonfire-style cache warm-up (paper §III, Zhang et al., FAST'13).

The paper's introduction motivates Reo partly by the cost of re-warming a
huge flash cache from scratch ("hours to even days"), and its related-work
section points at Bonfire — monitor the storage-server workload, track warm
data, and preload it — as the complementary technique. This module
implements that counterpart so the library covers both sides:

- the :class:`~repro.backend.store.BackendStore` records per-object read
  counts (the storage-server view of warmth);
- :class:`WarmupAdvisor` turns those counts into a preload plan (warmest
  objects first, sized to a byte budget);
- :meth:`WarmupAdvisor.preload` bulk-loads the plan into a fresh cache,
  off the request path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.backend.store import BackendStore
from repro.core.reo import ReoCache

__all__ = ["PreloadReport", "WarmupAdvisor"]


@dataclass
class PreloadReport:
    """Outcome of one preload pass."""

    objects_loaded: int = 0
    bytes_loaded: int = 0
    #: Simulated seconds the bulk load consumed.
    seconds: float = 0.0


class WarmupAdvisor:
    """Builds and applies preload plans from backend access history."""

    def __init__(self, backend: BackendStore) -> None:
        self.backend = backend

    def plan(self, budget_bytes: float, min_accesses: int = 1) -> List[str]:
        """Warmest objects first, greedily packed into ``budget_bytes``.

        Objects read fewer than ``min_accesses`` times are ignored — cold
        data is exactly what warm-up should not waste time on.
        """
        if budget_bytes <= 0:
            return []
        candidates = sorted(
            (
                name
                for name, count in self.backend.access_counts.items()
                if count >= min_accesses and name in self.backend
            ),
            key=lambda name: self.backend.access_counts[name],
            reverse=True,
        )
        chosen: List[str] = []
        used = 0.0
        for name in candidates:
            size = self.backend.size_of(name)
            if used + size > budget_bytes:
                continue
            used += size
            chosen.append(name)
        return chosen

    def preload(
        self,
        cache: ReoCache,
        budget_fraction: float = 0.9,
        min_accesses: int = 1,
    ) -> PreloadReport:
        """Bulk-load the plan into a (typically fresh) cache.

        The budget defaults to 90% of the cache's usable capacity, leaving
        headroom for demand fills. Loads run coldest-first so the warmest
        objects end at the MRU side of the replacement order.
        """
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError("budget fraction must be in (0, 1]")
        report = PreloadReport()
        budget = budget_fraction * cache.manager.usable_capacity
        names = self.plan(budget, min_accesses=min_accesses)
        start = cache.clock.now
        for name in reversed(names):  # coldest first, warmest last (MRU)
            result = cache.read(name)
            cache.clock.advance(result.latency)
            if name in cache.manager:
                report.objects_loaded += 1
                report.bytes_loaded += result.num_bytes
        report.seconds = cache.clock.now - start
        # The preload is maintenance traffic, not client requests.
        cache.stats.reset()
        return report
