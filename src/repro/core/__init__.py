"""Reo's core: differentiated redundancy and differentiated recovery.

This package is the paper's primary contribution (§IV):

- :mod:`repro.core.classes` — the four-class semantic taxonomy (Table II);
- :mod:`repro.core.hotness` — ``H = Freq/Size`` tracking with the adaptive
  ``H_hot`` threshold (§IV-C.1);
- :mod:`repro.core.policy` — class→scheme maps: Reo's differentiated policy
  and the uniform baselines it is evaluated against (§VI);
- :mod:`repro.core.redundancy` — the reserved parity-budget accounting;
- :mod:`repro.core.recovery` — class-ordered, object-granular recovery
  (§IV-D);
- :mod:`repro.core.reo` — the :class:`~repro.core.reo.ReoCache` facade that
  wires the full stack together.
"""

from repro.core.classes import ObjectClass, classify
from repro.core.hotness import HotnessTracker
from repro.core.policy import (
    RedundancyPolicy,
    ReoPolicy,
    UniformPolicy,
    full_replication,
    reo_policy,
    uniform_parity,
)
from repro.core.redundancy import RedundancyBudget


def __getattr__(name):
    """Lazily resolve the facade classes (PEP 562).

    ``repro.core.reo`` and ``repro.core.recovery`` import the cache manager,
    which in turn imports the leaf modules of this package; loading them
    eagerly here would close an import cycle.
    """
    if name == "ReoCache":
        from repro.core.reo import ReoCache

        return ReoCache
    if name == "RecoveryManager":
        from repro.core.recovery import RecoveryManager

        return RecoveryManager
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "HotnessTracker",
    "ObjectClass",
    "RecoveryManager",
    "RedundancyBudget",
    "RedundancyPolicy",
    "ReoCache",
    "ReoPolicy",
    "UniformPolicy",
    "classify",
    "full_replication",
    "reo_policy",
    "uniform_parity",
]
