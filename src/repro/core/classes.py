"""The four-class semantic taxonomy of cache objects (paper Table II).

=====  ================  ========  =========  =====
Name   Metadata          Read-freq Dirty      Class
=====  ================  ========  =========  =====
A      yes               (any)     (any)      0
B      no                (any)     yes        1
C      no                high      no         2
D      no                low       no         3
=====  ================  ========  =========  =====

Class 0 (system metadata) and class 1 (dirty data) are identified directly
from the object storage and the cache manager; classes 2 and 3 are separated
by the adaptive hotness threshold (:mod:`repro.core.hotness`).
"""

from __future__ import annotations

import enum

__all__ = ["ObjectClass", "classify"]


class ObjectClass(enum.IntEnum):
    """Reo class ids, ordered from most to least important."""

    #: Group #0: system metadata (root/partition/super block/device table/...).
    METADATA = 0
    #: Group #1: dirty cache data — the only valid copy in the system.
    DIRTY = 1
    #: Group #2: hot clean data — protects the hit ratio through failures.
    HOT_CLEAN = 2
    #: Group #3: cold clean data — majority of the cache, no redundancy.
    COLD_CLEAN = 3

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    ObjectClass.METADATA: "system metadata",
    ObjectClass.DIRTY: "dirty cache data",
    ObjectClass.HOT_CLEAN: "hot clean data",
    ObjectClass.COLD_CLEAN: "cold clean data",
}


def classify(is_metadata: bool, dirty: bool, hot: bool) -> ObjectClass:
    """Apply Table II: metadata beats dirty beats hot beats cold."""
    if is_metadata:
        return ObjectClass.METADATA
    if dirty:
        return ObjectClass.DIRTY
    if hot:
        return ObjectClass.HOT_CLEAN
    return ObjectClass.COLD_CLEAN
