"""Redundancy policies: class→scheme maps (paper §IV-C.4 and §VI-A).

A policy is the single point where Reo and its baselines differ. The target
calls the policy with an object's class id and gets back the
:class:`~repro.flash.stripe.RedundancyScheme` to encode it with:

- :class:`ReoPolicy` — the paper's differentiated map: metadata and dirty
  objects are fully replicated, hot clean objects get 2-parity stripes, cold
  clean objects get no redundancy. Carries the reserved parity fraction
  (Reo-10% / Reo-20% / Reo-40%).
- :class:`UniformPolicy` — the evaluation's baselines: the same scheme for
  every class (0-parity, 1-parity, 2-parity, or full replication).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import ObjectClass
from repro.flash.stripe import ParityScheme, RedundancyScheme, ReplicationScheme

__all__ = [
    "RedundancyPolicy",
    "ReoPolicy",
    "UniformPolicy",
    "full_replication",
    "reo_policy",
    "uniform_parity",
]


class RedundancyPolicy:
    """Maps a Reo class id to a redundancy scheme.

    Policies are callable so an :class:`~repro.osd.target.OsdTarget` can use
    one directly as its ``scheme_for`` hook.
    """

    #: Display name used in experiment reports.
    name: str = "abstract"
    #: Fraction of flash reserved for redundancy; None disables budgeting.
    reserve_fraction: "float | None" = None

    def scheme_for(self, class_id: int) -> RedundancyScheme:
        raise NotImplementedError

    def __call__(self, class_id: int) -> RedundancyScheme:
        return self.scheme_for(class_id)

    @property
    def differentiates(self) -> bool:
        """True when different classes can receive different schemes."""
        schemes = {self.scheme_for(class_id) for class_id in ObjectClass}
        return len(schemes) > 1


@dataclass(frozen=True)
class UniformPolicy(RedundancyPolicy):
    """One scheme for every object, regardless of class (the baselines)."""

    scheme: RedundancyScheme

    @property
    def name(self) -> str:
        return self.scheme.name

    def scheme_for(self, class_id: int) -> RedundancyScheme:
        return self.scheme


@dataclass(frozen=True)
class ReoPolicy(RedundancyPolicy):
    """The paper's differentiated class→scheme map.

    Attributes:
        reserve_fraction: flash fraction reserved for redundancy overhead —
            0.1, 0.2, and 0.4 give the paper's Reo-10%, Reo-20%, Reo-40%.
        hot_parity: parity chunks per stripe for hot clean objects (2 in the
            paper, "which ensures that they can survive no more than two
            device failures").
    """

    reserve_fraction: float = 0.10
    hot_parity: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.reserve_fraction <= 1.0:
            raise ValueError("reserve fraction must be in (0, 1]")
        if self.hot_parity < 0:
            raise ValueError("hot parity cannot be negative")

    @property
    def name(self) -> str:
        return f"Reo-{round(self.reserve_fraction * 100)}%"

    def scheme_for(self, class_id: int) -> RedundancyScheme:
        if class_id in (ObjectClass.METADATA, ObjectClass.DIRTY):
            return ReplicationScheme()
        if class_id == ObjectClass.HOT_CLEAN:
            return ParityScheme(self.hot_parity)
        return ParityScheme(0)


def uniform_parity(parity: int) -> UniformPolicy:
    """The 0/1/2-parity uniform baselines of §VI-A."""
    return UniformPolicy(ParityScheme(parity))


def full_replication() -> UniformPolicy:
    """The full-replication baseline of §VI-D."""
    return UniformPolicy(ReplicationScheme())


def reo_policy(reserve_fraction: float = 0.10, hot_parity: int = 2) -> ReoPolicy:
    """Reo with the given reserved redundancy fraction (0.1/0.2/0.4)."""
    return ReoPolicy(reserve_fraction=reserve_fraction, hot_parity=hot_parity)
