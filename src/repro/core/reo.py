"""The :class:`ReoCache` facade: the paper's full stack in one object.

Wires together the simulated flash array, the OSD target (with a redundancy
policy), the initiator, the backend store, the cache manager, and the
recovery manager — sharing one simulated clock — and exposes the small
surface the examples, tests, and benchmark harness drive:

>>> cache = ReoCache.build(policy=reo_policy(0.20), cache_bytes=64 << 20)
>>> cache.register_objects({"video-1": 4 << 20})
>>> result = cache.read("video-1")          # miss, fetched from backend
>>> cache.read("video-1").hit
True
>>> cache.fail_device(0)                     # shootdown
>>> cache.replace_device(0)                  # insert spare
>>> cache.recovery.start().pending >= 0
True
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.backend.store import BackendStore
from repro.cache.flusher import DirtyFlusher, FlusherConfig
from repro.cache.manager import AccessResult, CacheManager
from repro.cache.policies import make_eviction_policy
from repro.cache.stats import CacheStats
from repro.core.health import HealthMonitor, HealthPolicy
from repro.core.hotness import HotnessTracker
from repro.core.policy import RedundancyPolicy, reo_policy
from repro.core.recovery import RecoveryManager
from repro.core.redundancy import RedundancyBudget
from repro.core.supervisor import RecoverySupervisor
from repro.flash.array import FlashArray
from repro.flash.latency import INTEL_540S_SSD, ServiceTimeModel
from repro.osd.exofs import format_volume
from repro.osd.initiator import OsdInitiator
from repro.osd.target import OsdTarget
from repro.sim.clock import SimClock
from repro.units import KiB

__all__ = ["ReoCache"]


class ReoCache:
    """A reliable, efficient, object-based flash cache (the paper's Reo)."""

    def __init__(
        self,
        array: FlashArray,
        target: OsdTarget,
        initiator: OsdInitiator,
        backend: BackendStore,
        manager: CacheManager,
        recovery: RecoveryManager,
        policy: RedundancyPolicy,
    ) -> None:
        self.array = array
        self.target = target
        self.initiator = initiator
        self.backend = backend
        self.manager = manager
        self.recovery = recovery
        self.policy = policy
        #: Optional closed-loop fault handling; see :meth:`enable_supervision`.
        self.supervisor: "RecoverySupervisor | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        policy: Optional[RedundancyPolicy] = None,
        num_devices: int = 5,
        cache_bytes: int = 512 * 1024 * 1024,
        chunk_size: int = 64 * KiB,
        clock: Optional[SimClock] = None,
        device_model: ServiceTimeModel = INTEL_540S_SSD,
        backend_model: Optional[ServiceTimeModel] = None,
        reclassify_interval: int = 1000,
        capacity_margin: float = 0.02,
        admit_while_degraded: bool = False,
        hotness_size_exponent: float = 1.0,
        prioritized_recovery: bool = True,
        eviction_policy: str = "lru",
        flusher_config: "Optional[FlusherConfig]" = None,
        backend: Optional[BackendStore] = None,
    ) -> "ReoCache":
        """Assemble a complete cache stack.

        Args:
            policy: class→scheme map; defaults to Reo-10%.
            num_devices: flash devices in the array (the paper uses five).
            cache_bytes: total raw flash capacity across all devices.
            chunk_size: stripe chunk size (64 KB in Figs. 5-7/9, 1 MB in
                Fig. 8).
            clock: shared simulated clock (created if omitted).
            device_model: SSD service-time model.
            backend_model: backend service-time model (HDD + network hop if
                omitted).
            reclassify_interval: reads between ``H_hot`` recomputations.
            capacity_margin: headroom kept free on the array.
        """
        policy = policy or reo_policy(0.10)
        clock = clock or SimClock()
        device_capacity = max(1, math.ceil(cache_bytes / num_devices))
        array = FlashArray(
            num_devices=num_devices,
            device_capacity=device_capacity,
            chunk_size=chunk_size,
            clock=clock,
            model=device_model,
        )
        target = OsdTarget(array, policy=policy)
        format_volume(target)
        initiator = OsdInitiator(target)
        if backend is None:
            backend = BackendStore(clock=clock, model=backend_model)
        else:
            # Shared storage server (e.g. a cache-server restart scenario):
            # keep a single timeline across the stacks.
            backend.clock = clock
        budget = (
            RedundancyBudget(array, policy)
            if policy.reserve_fraction is not None
            else None
        )
        manager = CacheManager(
            initiator=initiator,
            backend=backend,
            budget=budget,
            hotness=HotnessTracker(size_exponent=hotness_size_exponent),
            reclassify_interval=reclassify_interval,
            capacity_margin=capacity_margin,
            admit_while_degraded=admit_while_degraded,
            eviction=make_eviction_policy(eviction_policy),
        )
        if flusher_config is not None:
            manager.flusher = DirtyFlusher(manager, flusher_config)
        recovery = RecoveryManager(
            target, cache_manager=manager, prioritized=prioritized_recovery
        )
        return cls(array, target, initiator, backend, manager, recovery, policy)

    # ------------------------------------------------------------------
    # Data set
    # ------------------------------------------------------------------
    def register_objects(self, catalog: Dict[str, int]) -> None:
        """Declare the backend data set (object name → size in bytes)."""
        for name, size in catalog.items():
            self.backend.register(name, size)

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def read(self, name: str) -> AccessResult:
        """Read an object through the cache (miss fetches from backend)."""
        return self.manager.read(name)

    def write(self, name: str) -> AccessResult:
        """Write an object (write-back: lands in cache as dirty)."""
        return self.manager.write(name)

    def flush(self) -> int:
        """Synchronize all dirty objects to the backend."""
        return self.manager.flush_all()

    # ------------------------------------------------------------------
    # Failure lifecycle
    # ------------------------------------------------------------------
    def fail_device(self, device_id: int) -> None:
        """Shoot down a device (the paper's emulated failure)."""
        self.array.fail_device(device_id)

    def replace_device(self, device_id: int) -> None:
        """Insert a fresh spare into a failed slot."""
        self.array.replace_device(device_id)

    def scrub(self):
        """Verify every stored chunk and repair silent corruption in place.

        Objects beyond repair are purged from the cache (they remain intact
        in the backend, so the next access refetches them). Returns the
        :class:`~repro.flash.array.ScrubReport`.
        """
        report = self.array.scrub()
        for key in report.unrecoverable_objects:
            name = self.manager.name_for(key)
            if name is not None:
                self.manager.drop_lost(name)
        return report

    def enable_supervision(
        self,
        health_policy: "Optional[HealthPolicy]" = None,
        spares: int = 1,
        scrub_interval: float = 300.0,
        injector: "object | None" = None,
    ) -> RecoverySupervisor:
        """Turn on the closed detect→repair loop.

        Attaches a :class:`~repro.core.health.HealthMonitor` to the array
        (every finished I/O batch feeds it) and a
        :class:`~repro.core.supervisor.RecoverySupervisor` that reacts to
        its verdicts: failing sick devices, swapping spares, starting
        class-ordered reconstruction, and scheduling prioritized scrubs.
        The experiment runner polls the supervisor between requests and
        grants it the idle gaps.

        Args:
            health_policy: detection thresholds (defaults are conservative).
            spares: replacement devices available for auto-swap.
            scrub_interval: simulated seconds between full scrub sweeps.
            injector: optional :class:`~repro.faults.FaultInjector` whose
                timed events the supervisor's poll should fire.
        """
        monitor = HealthMonitor(self.array, policy=health_policy)
        self.supervisor = RecoverySupervisor(
            self,
            monitor=monitor,
            injector=injector,
            spares=spares,
            scrub_interval=scrub_interval,
        )
        return self.supervisor

    def fail_and_recover(self, device_id: int) -> None:
        """Convenience: fail, insert a spare, and run recovery to the end."""
        self.fail_device(device_id)
        self.replace_device(device_id)
        self.recovery.start()
        self.recovery.run_to_completion()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clock(self) -> SimClock:
        return self.array.clock

    @property
    def stats(self) -> CacheStats:
        return self.manager.stats

    @property
    def hit_ratio(self) -> float:
        return self.stats.hit_ratio

    @property
    def space_efficiency(self) -> float:
        """User data as a fraction of occupied flash (paper §VI-B)."""
        return self.array.space_efficiency

    def __repr__(self) -> str:
        return (
            f"ReoCache(policy={self.policy.name}, objects={len(self.manager)}, "
            f"hit_ratio={self.hit_ratio:.3f})"
        )
