"""Differentiated data recovery (paper §IV-D).

When a failed device is replaced by a spare, the recovery manager scans the
object table, drops what is irrecoverable, and rebuilds the rest **in class
order** — metadata, then dirty data, then hot clean, then cold clean — and
within a class by descending hotness. Object granularity means invalid
blocks and irrecoverable objects are simply skipped, unlike block-order RAID
reconstruction.

Recovery runs in the gaps between foreground requests: the experiment runner
calls :meth:`RecoveryManager.run_until` with the next request's arrival time
as the deadline, so reconstruction consumes idle device time and contends
with on-demand accesses only through the device queues — the paper's
"highest priority to the on-demand access" rule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.core.hotness import HotnessTracker

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.cache.manager import CacheManager
from repro.errors import DeviceFullError, StripeLayoutError, UnrecoverableDataError
from repro.flash.array import ArrayIoResult, ObjectHealth
from repro.flash.stripe import ParityScheme, RedundancyScheme
from repro.osd.target import OsdTarget
from repro.osd.types import ObjectId

__all__ = ["RecoveryManager", "RecoveryPlan"]


@dataclass
class RecoveryPlan:
    """What a recovery scan found."""

    #: Objects to rebuild, already in priority order.
    to_rebuild: List[ObjectId] = field(default_factory=list)
    #: Objects lost beyond recovery (purged from cache and target).
    lost: List[ObjectId] = field(default_factory=list)

    @property
    def pending(self) -> int:
        return len(self.to_rebuild)


class RecoveryManager:
    """Class-ordered, object-granular reconstruction onto spare devices."""

    def __init__(
        self,
        target: OsdTarget,
        cache_manager: "Optional[CacheManager]" = None,
        hotness: Optional[HotnessTracker] = None,
        prioritized: bool = True,
    ) -> None:
        """
        Args:
            prioritized: order reconstruction by (class, hotness) — the
                paper's differentiated recovery. False reconstructs in
                object-id (i.e. insertion) order, the analogue of a
                traditional block-order rebuild, for the ablation study.
        """
        self.prioritized = prioritized
        self.target = target
        self.array = target.array
        self.manager = cache_manager
        self.hotness = hotness or (cache_manager.hotness if cache_manager else None)
        self._queue: Deque[ObjectId] = deque()
        self.active = False
        self.objects_rebuilt = 0
        self.objects_lost = 0
        self.chunks_rebuilt = 0
        self.seconds_spent = 0.0
        #: Durability-ledger hooks: ``(object_id, class_id, result)`` after a
        #: successful reconstruction, ``(object_id, class_id)`` when an
        #: object is purged as unrecoverable. Set by the supervisor.
        self.on_object_rebuilt: Optional[Callable[[ObjectId, int, ArrayIoResult], None]] = None
        self.on_object_lost: Optional[Callable[[ObjectId, int], None]] = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def scan(self) -> RecoveryPlan:
        """Triage every stored object against the current device states."""
        plan = RecoveryPlan()
        damaged = []
        for info in list(self.target.user_objects()):
            object_id = info.object_id
            if object_id not in self.array:
                continue
            # One stripe walk per object: missing chunks and health together.
            missing, health = self.array.triage_object(object_id)
            if not missing:
                continue
            if health is ObjectHealth.LOST:
                plan.lost.append(object_id)
            else:
                damaged.append((self._priority(info.class_id, object_id), object_id))
        damaged.sort(key=lambda item: item[0])
        plan.to_rebuild = [object_id for _, object_id in damaged]
        return plan

    def _priority(self, class_id: int, object_id: ObjectId):
        """Sort key: class ascending, then hotness descending (§IV-D)."""
        if not self.prioritized:
            return (0, 0.0, object_id)
        h_value = 0.0
        if self.hotness is not None and self.manager is not None:
            name = self.manager.name_for(object_id)
            if name is not None:
                h_value = self.hotness.h_value(name)
        return (class_id, -h_value, object_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> RecoveryPlan:
        """Scan, purge the lost, enqueue the rest, raise the 0x65 flag."""
        plan = self.scan()
        for object_id in plan.lost:
            self._purge(object_id)
        self._queue = deque(plan.to_rebuild)
        self.active = bool(self._queue)
        self.target.recovery_active = self.active
        return plan

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def decoder_cache_stats(self) -> "dict[str, int]":
        """Decoder-matrix cache counters for the codecs recovery runs on.

        The rebuild queue is ordered by class, and every object of a class
        shares one redundancy scheme, hence one ``(k, m)`` codec. A device
        failure presents the same survivor pattern for every stripe it
        touched, so a class sweep inverts its decoder matrix once on the
        first object and replays it from the LRU for the rest; the hit
        counters here make that reuse observable.
        """
        return self.array.decoder_cache_stats()

    def step(self) -> Optional[ArrayIoResult]:
        """Reconstruct the next object; returns its I/O cost, or None when done.

        Two repair modes (paper §IV-D):

        - **rebuild** — all missing fragments have an online home device (a
          spare was inserted): decode and write just those fragments back.
        - **restripe** — some fragments live on still-failed devices (no
          spare): read the object degraded and re-lay it across the
          survivors, recreating redundancy there. The redundancy scheme is
          down-shifted if the shrunken width cannot fit it (e.g. 2-parity
          needs at least three devices).

        Objects that became unrecoverable since the scan (another failure
        mid-recovery) are purged and skipped; objects that no longer fit the
        shrunken array are left degraded.
        """
        while self._queue:
            object_id = self._queue.popleft()
            if object_id not in self.array:
                continue
            missing = self.array.missing_chunks(object_id)
            if not missing:
                continue
            online = {device.device_id for device in self.array.online_devices}
            spare_covers_all = all(chunk.device_id in online for chunk in missing)
            try:
                if spare_covers_all:
                    result = self.array.rebuild_object(object_id)
                else:
                    result = self._restripe_with_room(object_id)
                    if result is None:
                        continue
            except UnrecoverableDataError:
                self._purge(object_id)
                continue
            self.objects_rebuilt += 1
            self.chunks_rebuilt += result.chunks_written
            self.seconds_spent += result.elapsed
            if self.on_object_rebuilt is not None:
                self.on_object_rebuilt(object_id, self._class_of(object_id), result)
            if self.manager is not None:
                name = self.manager.name_for(object_id)
                if name is not None:
                    self.manager.stats.recovered_objects += 1
            if not self._queue:
                self._finish()
            return result
        self._finish()
        return None

    def run_until(self, deadline: float) -> int:
        """Rebuild objects until the simulated clock reaches ``deadline``.

        Advances the clock by each rebuild's elapsed time, so reconstruction
        occupies the idle window between foreground requests.
        """
        clock = self.array.clock
        steps = 0
        while self.active and clock.now < deadline:
            result = self.step()
            if result is None:
                break
            clock.advance(result.elapsed)
            steps += 1
        return steps

    def run_to_completion(self, advance_clock: bool = True) -> int:
        """Drain the whole queue; returns the number of rebuilds."""
        clock = self.array.clock
        steps = 0
        while self.active:
            result = self.step()
            if result is None:
                break
            if advance_clock:
                clock.advance(result.elapsed)
            steps += 1
        return steps

    def _restripe_with_room(self, object_id: ObjectId) -> Optional[ArrayIoResult]:
        """Restripe an object, evicting LRU victims if the array is full.

        Differentiated recovery prefers keeping important data: when the
        shrunken array cannot hold the re-laid object, less-important cached
        objects are evicted (LRU order, dirty ones flushed first) until it
        fits. Returns None when the object must stay degraded.
        """
        if self.array.online_count < 1:
            # Nothing trusted left to restripe onto; leave the object
            # degraded rather than laying it out on a zero-width array.
            return None
        scheme = self._restripe_scheme(object_id)
        try:
            return self.array.restripe_object(object_id, scheme)
        except DeviceFullError:
            if self.manager is None:
                return None
        protected = self.manager.name_for(object_id)
        needed = self.array.estimate_stored_bytes(
            self.array.object_size(object_id), scheme
        )
        # Small headroom for per-device imbalance.
        while self.array.free_bytes < needed * 1.1:
            if not self.manager.evict_lru(exclude=protected):
                break
        try:
            return self.array.restripe_object(object_id, scheme)
        except DeviceFullError:
            return None

    def _restripe_scheme(self, object_id) -> RedundancyScheme:
        """The scheme a restriped object should get, down-shifted to fit.

        Uses the target's policy for the object's current class; a parity
        count that no longer fits the online width is reduced (replication
        self-adjusts through ``resolved_copies``).
        """
        info = self.target.get_info(object_id)
        scheme = self.target.policy(info.class_id)
        width = self.array.online_count
        try:
            scheme.validate(width)
            return scheme
        except StripeLayoutError:
            if isinstance(scheme, ParityScheme):
                # validate only fails when parity >= width; keep the maximum
                # parity the shrunken stripe can hold.
                return ParityScheme(max(0, width - 1))
            return scheme

    def _finish(self) -> None:
        if self.active:
            self.target.recovery_completed = True
        self.active = False
        self.target.recovery_active = False

    def _class_of(self, object_id: ObjectId) -> int:
        if self.target.exists(object_id):
            return self.target.get_info(object_id).class_id
        return -1

    def _purge(self, object_id: ObjectId) -> None:
        self.objects_lost += 1
        if self.on_object_lost is not None:
            # Class looked up before the purge removes the object record.
            self.on_object_lost(object_id, self._class_of(object_id))
        if self.manager is not None:
            name = self.manager.name_for(object_id)
            if name is not None:
                self.manager.drop_lost(name)
                return
        if self.target.exists(object_id):
            self.target.remove_object(object_id)

    def __repr__(self) -> str:
        return (
            f"RecoveryManager(active={self.active}, pending={self.pending}, "
            f"rebuilt={self.objects_rebuilt}, lost={self.objects_lost})"
        )
