"""Parity-budget accounting for differentiated redundancy (paper §IV-C.1).

Reo-X% reserves X% of the flash space for redundancy information. The budget
manager watches the array's live accounting and answers two questions:

- how many redundancy bytes remain for promoting clean objects to the hot
  scheme (metadata and dirty replicas are mandatory and are charged first);
- whether the reserve is exhausted — surfaced to initiators as sense 0x67.
"""

from __future__ import annotations

from repro.core.policy import RedundancyPolicy
from repro.core.classes import ObjectClass
from repro.errors import StripeLayoutError
from repro.flash.array import FlashArray

__all__ = ["RedundancyBudget"]


class RedundancyBudget:
    """Tracks the reserved redundancy space of an array under a policy."""

    def __init__(self, array: FlashArray, policy: RedundancyPolicy) -> None:
        self.array = array
        self.policy = policy

    @property
    def enabled(self) -> bool:
        """Budgeting only applies to policies that declare a reserve."""
        return self.policy.reserve_fraction is not None

    @property
    def budget_bytes(self) -> float:
        """The reserve, against the *online* capacity (shrinks on failures)."""
        if not self.enabled:
            return float("inf")
        return self.policy.reserve_fraction * self.array.capacity_bytes

    @property
    def used_bytes(self) -> int:
        """Redundancy bytes currently stored (parity + replicas)."""
        return self.array.redundancy_bytes

    @property
    def available_bytes(self) -> float:
        return max(0.0, self.budget_bytes - self.used_bytes)

    @property
    def is_full(self) -> bool:
        return self.enabled and self.used_bytes >= self.budget_bytes

    def hot_overhead_per_byte(self) -> float:
        """Extra stored bytes per logical byte of a hot-class object.

        E.g. 2-parity stripes on a five-wide array store 5/3 bytes per byte,
        an overhead of 2/3.
        """
        width = self.array.online_count
        scheme = self.policy.scheme_for(ObjectClass.HOT_CLEAN)
        try:
            return scheme.storage_multiplier(width) - 1.0
        except StripeLayoutError:
            # Scheme infeasible at this width (e.g. 2-parity on 2 devices).
            # Anything else — injected faults included — must propagate.
            return float("inf")

    def can_afford_hot(self, size: int) -> bool:
        """Would promoting ``size`` logical bytes stay inside the reserve?"""
        if not self.enabled:
            return True
        return size * self.hot_overhead_per_byte() <= self.available_bytes

    def __repr__(self) -> str:
        return (
            f"RedundancyBudget(budget={self.budget_bytes:.0f}, "
            f"used={self.used_bytes}, full={self.is_full})"
        )
