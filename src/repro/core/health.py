"""Per-device health monitoring and failure detection.

Real arrays do not get a courtesy call when a device starts dying: they
*infer* failure from the I/O stream. This module watches every
:class:`~repro.flash.array.ArrayIoResult` the array produces (the array
feeds its :attr:`~repro.flash.array.FlashArray.health` hook from every
finished batch) and maintains, per device:

- an EWMA of the **error rate** (checksum mismatches and transient I/O
  errors per operation), and
- an EWMA of the **service-time slowdown** — observed service seconds
  divided by what the device's own :class:`ServiceTimeModel` predicts for
  the same operation mix, so the metric is scale-free: a healthy device
  hovers near 1.0 and a fail-slow device converges to its latency
  multiplier regardless of payload sizes.

Policy thresholds move a device ONLINE → SUSPECT (placement stops, reads
prefer peers/parity) → FAILED. The monitor demotes to SUSPECT itself; the
FAILED verdict is emitted as a transition for the
:class:`~repro.core.supervisor.RecoverySupervisor` to act on (spare swap,
prioritized rebuild), keeping detection separate from repair policy.
Fail-stop failures (device already FAILED on the array) are *observed* by
:meth:`HealthMonitor.poll` and emitted through the same transition stream,
so one listener sees every failure shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover - imports only for annotations
    from repro.flash.array import ArrayIoResult, FlashArray
    from repro.flash.device import FlashDevice

__all__ = ["DeviceHealth", "HealthMonitor", "HealthPolicy", "HealthTransition"]


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds separating noise from demotion-worthy pathology.

    Attributes:
        alpha: EWMA smoothing factor *per operation*. A batch of ``n`` ops
            moves the average by ``1 - (1 - alpha) ** n``, so one bad op in
            a small batch cannot spike a healthy device over a threshold —
            only a sustained rate converges there.
        min_ops: operations observed before any verdict (EWMA warm-up).
        suspect_error_rate: error-rate EWMA demoting ONLINE → SUSPECT.
        fail_error_rate: error-rate EWMA escalating SUSPECT → FAILED.
        suspect_slowdown: slowdown EWMA demoting ONLINE → SUSPECT.
        fail_slowdown: slowdown EWMA escalating straight to FAILED.
        confirm_ops: operations a SUSPECT device must stay past its suspect
            threshold before the monitor escalates to FAILED — one bad
            burst parks a device, only a *persistent* pathology replaces it.
        suspect_grace: simulated seconds a device may stay SUSPECT before
            :meth:`HealthMonitor.poll` escalates it to FAILED regardless of
            traffic. Demotion diverts reads to peers, so a parked device may
            see no further I/O and the ops-based escalation would starve;
            the grace period is the time-based backstop (a real array would
            either rehabilitate the device with probes or evict it).
    """

    alpha: float = 0.02
    min_ops: int = 8
    suspect_error_rate: float = 0.05
    fail_error_rate: float = 0.30
    suspect_slowdown: float = 3.0
    fail_slowdown: float = 20.0
    confirm_ops: int = 24
    suspect_grace: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.suspect_error_rate > self.fail_error_rate:
            raise ValueError("suspect_error_rate must not exceed fail_error_rate")
        if self.suspect_slowdown > self.fail_slowdown:
            raise ValueError("suspect_slowdown must not exceed fail_slowdown")


@dataclass
class DeviceHealth:
    """The monitor's rolling picture of one device."""

    device_id: int
    generation: int = 0
    ops: int = 0
    errors: int = 0
    error_ewma: float = 0.0
    slowdown_ewma: float = 1.0
    #: ops counter value when the device entered SUSPECT (escalation timer).
    suspect_at_ops: Optional[int] = None
    suspect_since: Optional[float] = None

    def snapshot(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "errors": self.errors,
            "error_ewma": round(self.error_ewma, 6),
            "slowdown_ewma": round(self.slowdown_ewma, 6),
        }


class HealthTransition(NamedTuple):
    """One state-machine step the monitor decided or observed."""

    device_id: int
    old: str
    new: str  # "suspect" | "failed"
    at: float
    reason: str


TransitionListener = Callable[[HealthTransition], None]


class HealthMonitor:
    """Watches per-device I/O health and drives the SUSPECT/FAILED verdicts."""

    def __init__(
        self,
        array: "FlashArray",
        policy: Optional[HealthPolicy] = None,
        attach: bool = True,
    ) -> None:
        self.array = array
        self.policy = policy or HealthPolicy()
        self.devices: Dict[int, DeviceHealth] = {}
        self.listeners: List[TransitionListener] = []
        self.transitions: List[HealthTransition] = []
        #: Device ids whose FAILED state has been emitted (dedup).
        self._failed_seen: Dict[int, int] = {}
        #: Degraded foreground-read latencies (simulated seconds), for the
        #: durability ledger's degraded-read percentiles.
        self.degraded_read_latencies: List[float] = []
        if attach:
            array.health = self

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------
    def ingest(self, result: "ArrayIoResult", now: float) -> None:
        """Fold one array operation's per-device samples into the EWMAs."""
        if result.op == "read" and result.degraded:
            self.degraded_read_latencies.append(result.elapsed)
        for device_id, sample in result.device_io.items():
            device = self.array.devices[device_id]
            health = self._health(device)
            ops = sample.reads + sample.writes
            if ops == 0:
                continue
            health.ops += ops
            health.errors += sample.errors
            # A batch is `ops` EWMA samples of its own rate: the effective
            # smoothing factor compounds per operation.
            alpha = 1.0 - (1.0 - self.policy.alpha) ** ops
            error_rate = sample.errors / ops
            health.error_ewma += alpha * (error_rate - health.error_ewma)
            expected = self._expected_seconds(device, sample)
            if expected > 0.0 and sample.seconds > 0.0:
                slowdown = sample.seconds / expected
                health.slowdown_ewma += alpha * (slowdown - health.slowdown_ewma)
            self._evaluate(device, health, now)

    def poll(self, now: float) -> List[HealthTransition]:
        """Observe out-of-band state changes (fail-stop shootdowns, swaps).

        Returns the transitions emitted by this poll. Called between
        requests by the supervisor so a fail-stop is noticed at the first
        opportunity even when no I/O touches the dead device.
        """
        emitted: List[HealthTransition] = []
        for device in self.array.devices:
            health = self._health(device)  # refreshed on generation change
            if not device.is_available:
                if self._failed_seen.get(device.device_id) != device.generation:
                    self._failed_seen[device.device_id] = device.generation
                    emitted.append(
                        self._emit(device.device_id, "online", "failed", now,
                                   "fail-stop observed")
                    )
                continue
            if not device.is_online:
                # SUSPECT: reads were diverted to peers, so the ops-based
                # escalation may never see another sample. The grace period
                # is the time-based backstop.
                if health.suspect_since is None:
                    health.suspect_since = now
                elif (
                    now - health.suspect_since >= self.policy.suspect_grace
                    and self._failed_seen.get(device.device_id) != device.generation
                ):
                    self._failed_seen[device.device_id] = device.generation
                    emitted.append(
                        self._emit(
                            device.device_id, "suspect", "failed", now,
                            f"suspect for {now - health.suspect_since:.3f}s",
                        )
                    )
        return emitted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health_of(self, device_id: int) -> DeviceHealth:
        return self._health(self.array.devices[device_id])

    def degraded_read_percentile(self, fraction: float) -> float:
        """Degraded foreground-read latency percentile (0 when none seen)."""
        if not self.degraded_read_latencies:
            return 0.0
        ordered = sorted(self.degraded_read_latencies)
        index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
        return ordered[index]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _health(self, device: "FlashDevice") -> DeviceHealth:
        health = self.devices.get(device.device_id)
        if health is None or health.generation != device.generation:
            # First sighting, or a spare was swapped in: fresh record — a
            # replacement is a different physical device.
            health = DeviceHealth(
                device_id=device.device_id, generation=device.generation
            )
            self.devices[device.device_id] = health
        return health

    def _expected_seconds(self, device: "FlashDevice", sample) -> float:
        model = device.model
        return (
            sample.reads * model.read_overhead
            + sample.bytes_read / model.read_bandwidth
            + sample.writes * model.write_overhead
            + sample.bytes_written / model.write_bandwidth
        )

    def _evaluate(self, device: "FlashDevice", health: DeviceHealth, now: float) -> None:
        policy = self.policy
        if health.ops < policy.min_ops or not device.is_available:
            return
        errs, slow = health.error_ewma, health.slowdown_ewma
        if device.is_online:
            if errs >= policy.suspect_error_rate or slow >= policy.suspect_slowdown:
                device.suspect()
                health.suspect_at_ops = health.ops
                health.suspect_since = now
                reason = (
                    f"error_ewma={errs:.3f}" if errs >= policy.suspect_error_rate
                    else f"slowdown_ewma={slow:.1f}"
                )
                self._emit(device.device_id, "online", "suspect", now, reason)
            return
        # SUSPECT: escalate when the pathology persists or worsens. Emit the
        # FAILED verdict once per device generation (the supervisor acts on
        # the first one; without a supervisor, repeats would just be noise).
        if self._failed_seen.get(device.device_id) == device.generation:
            return
        if errs >= policy.fail_error_rate or slow >= policy.fail_slowdown:
            self._failed_seen[device.device_id] = device.generation
            self._emit(
                device.device_id, "suspect", "failed", now,
                f"error_ewma={errs:.3f} slowdown_ewma={slow:.1f}",
            )
            return
        started = health.suspect_at_ops or 0
        still_bad = errs >= policy.suspect_error_rate or slow >= policy.suspect_slowdown
        if still_bad and health.ops - started >= policy.confirm_ops:
            self._failed_seen[device.device_id] = device.generation
            self._emit(
                device.device_id, "suspect", "failed", now,
                f"persistent after {health.ops - started} ops",
            )

    def _emit(
        self, device_id: int, old: str, new: str, at: float, reason: str
    ) -> HealthTransition:
        transition = HealthTransition(device_id, old, new, at, reason)
        self.transitions.append(transition)
        for listener in list(self.listeners):
            listener(transition)
        return transition
