"""Supervised auto-recovery: detect → spare → rebuild → scrub, plus the books.

The :class:`RecoverySupervisor` closes the loop the rest of the stack leaves
open. The health monitor only *decides* that a device is sick; the recovery
manager only rebuilds once *somebody* fails and replaces the device. The
supervisor is that somebody: it subscribes to health transitions, shoots
down devices the monitor condemns, swaps in spares while any remain, starts
class-ordered reconstruction, and keeps a periodic, class-prioritized scrub
running in the idle gaps — all on the simulated clock, so campaigns replay
byte-identically under a fixed seed.

Every durability-relevant event lands in the :class:`DurabilityLedger`:
per-incident detection/swap/recovery timestamps (hence detection latency and
time-to-full-redundancy), reduced-redundancy windows, bytes repaired, and
data loss broken down by object class. ``to_dict()`` is deterministic and
JSON-ready — it is the artefact the fault-campaign experiment publishes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.core.health import HealthMonitor, HealthTransition

if TYPE_CHECKING:  # pragma: no cover - imports only for annotations
    from repro.core.reo import ReoCache
    from repro.flash.array import ArrayIoResult, ScrubReport

__all__ = ["DeviceIncident", "DurabilityLedger", "RecoverySupervisor", "ScrubScheduler"]


@dataclass
class DeviceIncident:
    """One device's journey from first symptom to restored redundancy."""

    device_id: int
    generation: int
    #: What first condemned the device ("error_ewma=...", "fail-stop observed").
    reason: str = ""
    suspected_at: Optional[float] = None
    failed_at: Optional[float] = None
    swapped_at: Optional[float] = None
    recovered_at: Optional[float] = None

    @property
    def detected_at(self) -> Optional[float]:
        """First moment the monitor reacted (suspect or outright failed)."""
        if self.suspected_at is None:
            return self.failed_at
        return self.suspected_at

    def time_to_full_redundancy(self) -> Optional[float]:
        if self.recovered_at is None or self.detected_at is None:
            return None
        return self.recovered_at - self.detected_at

    def to_dict(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "generation": self.generation,
            "reason": self.reason,
            "suspected_at": _round(self.suspected_at),
            "failed_at": _round(self.failed_at),
            "swapped_at": _round(self.swapped_at),
            "recovered_at": _round(self.recovered_at),
            "time_to_full_redundancy": _round(self.time_to_full_redundancy()),
        }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 9)


class DurabilityLedger:
    """The durability books: what was at risk, for how long, what was lost."""

    def __init__(self) -> None:
        self.incidents: List[DeviceIncident] = []
        self._open: Dict[tuple, DeviceIncident] = {}
        #: Closed [start, end] spans with less than full redundancy, plus the
        #: start of the still-open span (if any).
        self.reduced_redundancy_windows: List[List[float]] = []
        self._degraded_since: Optional[float] = None
        self.objects_rebuilt = 0
        self.bytes_repaired = 0
        self.lost_by_class: Dict[int, int] = {}
        self.scrub_passes = 0
        self.objects_scrubbed = 0
        self.chunks_scrubbed = 0
        self.chunks_repaired_by_scrub = 0

    # ------------------------------------------------------------------
    # Incident lifecycle
    # ------------------------------------------------------------------
    def incident_for(self, device_id: int, generation: int) -> DeviceIncident:
        key = (device_id, generation)
        incident = self._open.get(key)
        if incident is None:
            incident = DeviceIncident(device_id=device_id, generation=generation)
            self._open[key] = incident
            self.incidents.append(incident)
        return incident

    def mark_recovered(self, now: float) -> None:
        """Redundancy is fully restored: close every open incident."""
        for incident in self._open.values():
            if incident.recovered_at is None:
                incident.recovered_at = now
        self._open.clear()
        self.end_degraded(now)

    def begin_degraded(self, now: float) -> None:
        if self._degraded_since is None:
            self._degraded_since = now

    def end_degraded(self, now: float) -> None:
        if self._degraded_since is not None:
            self.reduced_redundancy_windows.append([self._degraded_since, now])
            self._degraded_since = None

    @property
    def reduced_redundancy_seconds(self) -> float:
        return sum(end - start for start, end in self.reduced_redundancy_windows)

    # ------------------------------------------------------------------
    # Repair accounting (wired as RecoveryManager / scrub callbacks)
    # ------------------------------------------------------------------
    def record_rebuilt(self, object_id, class_id: int, result: "ArrayIoResult") -> None:
        self.objects_rebuilt += 1
        self.bytes_repaired += result.bytes_written

    def record_lost(self, object_id, class_id: int) -> None:
        self.lost_by_class[class_id] = self.lost_by_class.get(class_id, 0) + 1

    def record_rehomed(self, object_id, class_id: int, nbytes: int) -> None:
        """A shard evacuation/reconstruction moved one object's bytes.

        Re-homing is rebuild work at cluster granularity, so it lands in
        the same counters the device-level recovery manager uses.
        """
        self.objects_rebuilt += 1
        self.bytes_repaired += nbytes

    def record_scrub(self, report: "ScrubReport") -> None:
        self.objects_scrubbed += report.objects_checked
        self.chunks_scrubbed += report.chunks_checked
        self.chunks_repaired_by_scrub += report.chunks_repaired
        self.bytes_repaired += report.io.bytes_written

    @property
    def objects_lost(self) -> int:
        return sum(self.lost_by_class.values())

    def detection_latency(self, occurred_at: float, device_id: int) -> Optional[float]:
        """Delay between a known fault-injection time and detection."""
        for incident in self.incidents:
            if incident.device_id == device_id and incident.detected_at is not None:
                if incident.detected_at >= occurred_at:
                    return incident.detected_at - occurred_at
        return None

    def to_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-ready snapshot (identical per seed)."""
        return {
            "incidents": [incident.to_dict() for incident in self.incidents],
            "objects_rebuilt": self.objects_rebuilt,
            "objects_lost": self.objects_lost,
            "lost_by_class": {
                str(class_id): count
                for class_id, count in sorted(self.lost_by_class.items())
            },
            "bytes_repaired": self.bytes_repaired,
            "scrub_passes": self.scrub_passes,
            "objects_scrubbed": self.objects_scrubbed,
            "chunks_scrubbed": self.chunks_scrubbed,
            "chunks_repaired_by_scrub": self.chunks_repaired_by_scrub,
            "reduced_redundancy_windows": [
                [_round(start), _round(end)]
                for start, end in self.reduced_redundancy_windows
            ],
            "reduced_redundancy_seconds": _round(self.reduced_redundancy_seconds),
        }


class ScrubScheduler:
    """Class-prioritized periodic scrubbing that runs in idle gaps.

    Two work sources, in strict priority order:

    1. **Targeted** — objects owning chunks that already tripped a checksum
       (:meth:`FlashArray.corrupt_object_keys`). Damage reads have found is
       repaired at the next idle moment, not at the next sweep.
    2. **Periodic sweep** — every ``interval`` simulated seconds, the whole
       object table is queued in class order (metadata first, cold clean
       last), mirroring differentiated recovery: the blast radius of *yet
       undetected* bit-rot shrinks fastest for the classes whose loss hurts
       most.

    One object is scrubbed per step so the scheduler can stop at any
    deadline; the clock advances by each step's simulated I/O time.
    """

    def __init__(
        self,
        cache: "ReoCache",
        interval: float = 300.0,
        ledger: Optional[DurabilityLedger] = None,
        on_unrecoverable: Optional[Callable[[object], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("scrub interval must be positive")
        self.cache = cache
        self.array = cache.array
        self.target = cache.target
        self.interval = interval
        self.ledger = ledger
        self.on_unrecoverable = on_unrecoverable
        self._sweep_queue: Deque[object] = deque()
        self._sweep_open = False
        self._next_sweep_at = self.array.clock.now + interval

    @property
    def has_work(self) -> bool:
        return bool(
            self._sweep_queue
            or self.array.corrupt_object_keys()
            or self.array.clock.now >= self._next_sweep_at
        )

    def run_until(self, deadline: float) -> int:
        """Scrub one object at a time until the clock reaches ``deadline``."""
        clock = self.array.clock
        steps = 0
        while clock.now < deadline:
            key = self._next_key(clock.now)
            if key is None:
                break
            report = self.array.scrub([key])
            clock.advance(report.io.elapsed)
            self._account(report)
            steps += 1
        return steps

    def force_sweep(self) -> int:
        """Queue and drain a full sweep immediately (campaign wind-down)."""
        self._next_sweep_at = self.array.clock.now
        return self.run_until(float("inf"))

    def _next_key(self, now: float):
        targeted = self.array.corrupt_object_keys()
        if targeted:
            return targeted[0]
        if not self._sweep_queue:
            if self._sweep_open:
                # The queued sweep just drained: one pass is complete.
                self._sweep_open = False
                self._next_sweep_at = now + self.interval
                if self.ledger is not None:
                    self.ledger.scrub_passes += 1
            if now >= self._next_sweep_at:
                self._queue_sweep()
        if self._sweep_queue:
            return self._sweep_queue.popleft()
        return None

    def _queue_sweep(self) -> None:
        ordered = sorted(
            self.target.user_objects(),
            key=lambda info: (info.class_id, info.object_id),
        )
        self._sweep_queue = deque(
            info.object_id for info in ordered if info.object_id in self.array
        )
        self._sweep_open = bool(self._sweep_queue)

    def _account(self, report: "ScrubReport") -> None:
        if self.ledger is not None:
            self.ledger.record_scrub(report)
        if self.on_unrecoverable is not None:
            for key in report.unrecoverable_objects:
                self.on_unrecoverable(key)


class RecoverySupervisor:
    """Owns the closed loop: detection verdicts become repair actions.

    Wiring (all on one simulated clock):

    - subscribes to the :class:`HealthMonitor`'s transition stream;
    - a FAILED verdict shoots the device down (if the monitor condemned a
      still-serving fail-slow device), swaps in a spare while any remain,
      and starts class-ordered reconstruction;
    - :meth:`poll` fires due injected fail-stops and lets the monitor
      observe them, so every failure shape enters through one path;
    - :meth:`run_until` spends the idle gap between foreground requests on
      reconstruction first, then on prioritized scrubbing;
    - every step is booked in the :class:`DurabilityLedger`.
    """

    def __init__(
        self,
        cache: "ReoCache",
        monitor: Optional[HealthMonitor] = None,
        injector: "object | None" = None,
        spares: int = 1,
        scrub_interval: float = 300.0,
    ) -> None:
        self.cache = cache
        self.array = cache.array
        self.recovery = cache.recovery
        self.monitor = monitor or HealthMonitor(cache.array)
        self.injector = injector
        self.spares_remaining = spares
        self.ledger = DurabilityLedger()
        self.scrubber = ScrubScheduler(
            cache,
            interval=scrub_interval,
            ledger=self.ledger,
            on_unrecoverable=self._purge_unrecoverable,
        )
        self._recovering = False
        self.monitor.listeners.append(self._on_transition)
        self.recovery.on_object_rebuilt = self._on_rebuilt
        self.recovery.on_object_lost = self.ledger.record_lost

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def poll(self, now: float) -> None:
        """Between-requests heartbeat: fire due faults, observe, react."""
        if self.injector is not None:
            self.injector.poll(now)
        self.monitor.poll(now)
        self._check_recovery_done(now)

    def _on_transition(self, transition: HealthTransition) -> None:
        device = self.array.devices[transition.device_id]
        incident = self.ledger.incident_for(device.device_id, device.generation)
        if not incident.reason:
            incident.reason = transition.reason
        if transition.new == "suspect":
            incident.suspected_at = transition.at
            return
        if transition.new != "failed":
            return
        incident.failed_at = transition.at
        self.ledger.begin_degraded(transition.at)
        if device.is_available:
            # Monitor verdict on a still-serving (fail-slow / error-prone)
            # device: shoot it down so reads stop trusting it.
            self.array.fail_device(device.device_id)
        if self.spares_remaining > 0:
            self.spares_remaining -= 1
            self.array.replace_device(device.device_id)
            incident.swapped_at = transition.at
        plan = self.recovery.start()
        self._recovering = self.recovery.active
        if not self._recovering and not plan.lost:
            # Nothing was resident on the device: redundancy never dipped.
            self.ledger.mark_recovered(transition.at)

    # ------------------------------------------------------------------
    # Background work
    # ------------------------------------------------------------------
    @property
    def has_background_work(self) -> bool:
        return self.recovery.active or self.scrubber.has_work

    def run_until(self, deadline: float) -> None:
        """Spend idle time until ``deadline``: reconstruction, then scrub."""
        clock = self.array.clock
        self.poll(clock.now)
        if self.recovery.active:
            self.recovery.run_until(deadline)
            self._check_recovery_done(clock.now)
        if clock.now < deadline:
            self.scrubber.run_until(deadline)

    def drain(self) -> None:
        """Finish all outstanding repair work (campaign wind-down)."""
        clock = self.array.clock
        self.poll(clock.now)
        while self.recovery.active:
            self.recovery.run_to_completion()
            self._check_recovery_done(clock.now)
            self.poll(clock.now)
        self.scrubber.force_sweep()
        self._check_recovery_done(clock.now)

    def _check_recovery_done(self, now: float) -> None:
        if self._recovering and not self.recovery.active:
            self._recovering = False
            self.ledger.mark_recovered(now)

    def _on_rebuilt(self, object_id, class_id: int, result) -> None:
        self.ledger.record_rebuilt(object_id, class_id, result)

    def _purge_unrecoverable(self, object_id) -> None:
        """A scrub found an object beyond repair: purge it, book the loss."""
        class_id = -1
        if self.cache.target.exists(object_id):
            class_id = self.cache.target.get_info(object_id).class_id
        self.ledger.record_lost(object_id, class_id)
        name = self.cache.manager.name_for(object_id)
        if name is not None:
            self.cache.manager.drop_lost(name)
        elif self.cache.target.exists(object_id):
            self.cache.target.remove_object(object_id)

    def __repr__(self) -> str:
        return (
            f"RecoverySupervisor(spares={self.spares_remaining}, "
            f"recovering={self.recovery.active}, "
            f"incidents={len(self.ledger.incidents)})"
        )
