"""OSD command set, modelled on the T10 OSD-2 service actions the paper uses.

Commands are plain dataclasses with an :meth:`apply` method executing them
against an :class:`~repro.osd.target.OsdTarget`. The indirection mirrors the
SCSI command boundary of the real open-osd stack: the initiator builds
command PDUs, the target interprets them, and all status flows back as sense
codes. Keeping the boundary explicit lets tests drive the target exactly the
way the cache manager does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.osd.target import OsdResponse, OsdTarget
from repro.osd.sense import SenseCode
from repro.osd.types import ObjectId, ObjectKind

__all__ = [
    "CreateObject",
    "CreatePartition",
    "GetAttr",
    "ListPartition",
    "OsdCommand",
    "Read",
    "Remove",
    "SetAttr",
    "Update",
    "Write",
]


class OsdCommand:
    """Base class for OSD commands (marker + shared docstring)."""

    def apply(self, target: OsdTarget) -> OsdResponse:
        raise NotImplementedError


@dataclass(frozen=True)
class CreatePartition(OsdCommand):
    """CREATE PARTITION service action."""

    pid: int

    def apply(self, target: OsdTarget) -> OsdResponse:
        return target.create_partition(self.pid)


@dataclass(frozen=True)
class CreateObject(OsdCommand):
    """CREATE service action — an empty user or collection object."""

    object_id: ObjectId
    kind: ObjectKind = ObjectKind.USER

    def apply(self, target: OsdTarget) -> OsdResponse:
        if target.exists(self.object_id):
            return OsdResponse(SenseCode.FAIL)
        return target.write_object(self.object_id, b"", kind=self.kind)


@dataclass(frozen=True)
class Write(OsdCommand):
    """WRITE service action. ``class_id`` rides along as a capability hint."""

    object_id: ObjectId
    payload: bytes
    class_id: Optional[int] = None

    def apply(self, target: OsdTarget) -> OsdResponse:
        return target.write_object(self.object_id, self.payload, class_id=self.class_id)


@dataclass(frozen=True)
class Update(OsdCommand):
    """Partial in-place WRITE at a byte offset (delta/direct parity path)."""

    object_id: ObjectId
    offset: int
    payload: bytes

    def apply(self, target: OsdTarget) -> OsdResponse:
        return target.update_object(self.object_id, self.offset, self.payload)


@dataclass(frozen=True)
class Read(OsdCommand):
    """READ service action — whole-object read."""

    object_id: ObjectId

    def apply(self, target: OsdTarget) -> OsdResponse:
        return target.read_object(self.object_id)


@dataclass(frozen=True)
class Remove(OsdCommand):
    """REMOVE service action."""

    object_id: ObjectId

    def apply(self, target: OsdTarget) -> OsdResponse:
        return target.remove_object(self.object_id)


@dataclass(frozen=True)
class SetAttr(OsdCommand):
    """SET ATTRIBUTES service action (one page entry)."""

    object_id: ObjectId
    key: str
    value: str

    def apply(self, target: OsdTarget) -> OsdResponse:
        if not target.exists(self.object_id):
            return OsdResponse(SenseCode.FAIL)
        target.get_info(self.object_id).attributes[self.key] = self.value
        return OsdResponse(SenseCode.OK)


@dataclass(frozen=True)
class GetAttr(OsdCommand):
    """GET ATTRIBUTES service action; value returned as the payload."""

    object_id: ObjectId
    key: str

    def apply(self, target: OsdTarget) -> OsdResponse:
        if not target.exists(self.object_id):
            return OsdResponse(SenseCode.FAIL)
        value = target.get_info(self.object_id).attributes.get(self.key)
        if value is None:
            return OsdResponse(SenseCode.FAIL)
        return OsdResponse(SenseCode.OK, payload=value.encode("utf-8"))


@dataclass(frozen=True)
class ListPartition(OsdCommand):
    """LIST service action: member object ids, newline-separated."""

    pid: int

    def apply(self, target: OsdTarget) -> OsdResponse:
        if not target.has_partition(self.pid):
            return OsdResponse(SenseCode.FAIL)
        listing = "\n".join(str(oid) for oid in target.list_partition(self.pid))
        return OsdResponse(SenseCode.OK, payload=listing.encode("ascii"))
