"""Wire format for OSD commands and responses.

The real open-osd stack carries OSD service actions in SCSI CDBs over
iSCSI. This module provides the simulation's equivalent: every command and
response serializes to a PDU of

- a 4-byte big-endian header length,
- a JSON header (command kind, ids, attributes), and
- an opaque binary data segment (write payloads, read results).

Round-tripping through real bytes keeps the initiator/target boundary
honest — nothing crosses it except what the wire format can carry — and
gives the transport layer true payload sizes to bill.

Hardening (service-layer PR): headers and whole PDUs have explicit size
limits, headers must decode to a JSON object, and every protocol-level
failure raises :class:`~repro.errors.WireError` (an :class:`OsdError`
subclass) so transports can tell stream corruption from target errors.
PDU headers optionally carry a ``seq`` sequence id, which lets a pipelined
connection match out-of-order responses to their requests.

Zero-copy (throughput PR): every decode path accepts any buffer-protocol
object (``bytes``/``bytearray``/``memoryview``), so a stream decoder can
hand PDU slices straight off its receive buffer without materializing an
intermediate copy — the data segment is copied exactly once, into the
command/response payload. On the send side the ``encode_*_parts``
variants return the PDU as ``[header segment, payload]`` buffers for
``StreamWriter.writelines``, so large payloads are never concatenated
into a fresh PDU bytestring just to be written.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

from repro.errors import WireError
from repro.flash.array import ArrayIoResult
from repro.osd import commands
from repro.osd.sense import SenseCode
from repro.osd.target import OsdResponse
from repro.osd.types import ObjectId, ObjectKind

__all__ = [
    "Buffer",
    "CommandPdu",
    "MAX_HEADER_BYTES",
    "MAX_PDU_BYTES",
    "decode_command",
    "decode_command_pdu",
    "decode_response",
    "decode_response_pdu",
    "encode_command",
    "encode_command_parts",
    "encode_response",
    "encode_response_parts",
]

#: Anything the decode paths and vectored send paths accept in place of
#: ``bytes``. (``collections.abc.Buffer`` needs 3.12; spell it out.)
Buffer = Union[bytes, bytearray, memoryview]

_LENGTH = struct.Struct(">I")

#: Hard ceiling on the JSON header segment. Headers are a handful of short
#: fields; anything bigger is corruption or an attack, not a command.
MAX_HEADER_BYTES = 64 * 1024

#: Hard ceiling on a whole PDU (header + data segment). Caps both what an
#: encoder will produce and what a decoder/server will buffer per request.
MAX_PDU_BYTES = 64 * 1024 * 1024


def _pack_parts(
    header: Dict[str, Any], data: Buffer = b"", seq: Optional[int] = None
) -> List[Buffer]:
    """Serialize a PDU as ``[length-prefixed header, payload]`` buffers.

    The payload segment is passed through untouched — the zero-copy half
    of the send path. Size limits are enforced on the would-be total.
    """
    if seq is not None:
        header = dict(header, seq=int(seq))
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("ascii")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise WireError(
            f"PDU header of {len(header_bytes)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit"
        )
    total = _LENGTH.size + len(header_bytes) + len(data)
    if total > MAX_PDU_BYTES:
        raise WireError(
            f"PDU of {total} bytes exceeds the {MAX_PDU_BYTES}-byte limit"
        )
    parts: List[Buffer] = [_LENGTH.pack(len(header_bytes)) + header_bytes]
    if len(data):
        parts.append(data)
    return parts


def _pack(
    header: Dict[str, Any], data: Buffer = b"", seq: Optional[int] = None
) -> bytes:
    return b"".join(_pack_parts(header, data, seq))


def _unpack(pdu: Buffer) -> Tuple[Dict[str, Any], Buffer]:
    """Split a PDU into its header dict and data segment.

    Accepts any buffer-protocol object. The returned data segment is a
    zero-copy slice of the input when the input was a ``memoryview`` —
    callers own the materialization decision.
    """
    if len(pdu) > MAX_PDU_BYTES:
        raise WireError(
            f"PDU of {len(pdu)} bytes exceeds the {MAX_PDU_BYTES}-byte limit"
        )
    if len(pdu) < _LENGTH.size:
        raise WireError("truncated PDU: missing length prefix")
    (header_length,) = _LENGTH.unpack_from(pdu)
    if header_length > MAX_HEADER_BYTES:
        raise WireError(
            f"declared header of {header_length} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit"
        )
    end = _LENGTH.size + header_length
    if len(pdu) < end:
        raise WireError("truncated PDU: header shorter than declared")
    try:
        header = json.loads(bytes(pdu[_LENGTH.size : end]).decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed PDU header: {exc}") from None
    if not isinstance(header, dict):
        raise WireError(
            f"PDU header must be a JSON object, got {type(header).__name__}"
        )
    return header, pdu[end:]


def _materialize(data: Buffer) -> bytes:
    """Copy a data segment out of the decoder's buffer, exactly once."""
    return data if isinstance(data, bytes) else bytes(data)


def _seq_of(header: Dict[str, Any]) -> Optional[int]:
    seq = header.get("seq")
    if seq is None:
        return None
    try:
        return int(seq)
    except (TypeError, ValueError):
        raise WireError(f"malformed sequence id {seq!r}") from None


def _object_id_fields(object_id: ObjectId) -> Dict[str, Any]:
    return {"pid": object_id.pid, "oid": object_id.oid}


def _object_id_from(header: Dict[str, Any]) -> ObjectId:
    try:
        return ObjectId(int(header["pid"]), int(header["oid"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"PDU missing object id: {exc}") from None


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def encode_command(
    command: commands.OsdCommand,
    seq: Optional[int] = None,
    retry: int = 0,
) -> bytes:
    """Serialize a command to its PDU.

    Args:
        command: the command to serialize.
        seq: optional sequence id for pipelined connections; echoed back on
            the matching response so it can be demultiplexed.
        retry: retransmission attempt number (0 = first send). Lets the
            server count retried commands in its service stats.
    """
    return _pack(*_command_envelope(command, retry), seq=seq)


def encode_command_parts(
    command: commands.OsdCommand,
    seq: Optional[int] = None,
    retry: int = 0,
) -> List[Buffer]:
    """Serialize a command as ``[header segment, payload]`` buffers.

    The vectored twin of :func:`encode_command` — the write/update payload
    rides along un-copied, for ``writelines``-style send paths.
    """
    header, data = _command_envelope(command, retry)
    return _pack_parts(header, data, seq=seq)


def _command_envelope(
    command: commands.OsdCommand, retry: int = 0
) -> Tuple[Dict[str, Any], bytes]:
    header: Optional[Dict[str, Any]] = None
    data = b""
    if isinstance(command, commands.CreatePartition):
        header = {"op": "create_partition", "partition": command.pid}
    elif isinstance(command, commands.CreateObject):
        header = {"op": "create", "kind": command.kind.value}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.Write):
        header = {"op": "write", "class_id": command.class_id}
        header.update(_object_id_fields(command.object_id))
        data = command.payload
    elif isinstance(command, commands.Update):
        header = {"op": "update", "offset": command.offset}
        header.update(_object_id_fields(command.object_id))
        data = command.payload
    elif isinstance(command, commands.Read):
        header = {"op": "read"}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.Remove):
        header = {"op": "remove"}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.SetAttr):
        header = {"op": "set_attr", "key": command.key, "value": command.value}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.GetAttr):
        header = {"op": "get_attr", "key": command.key}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.ListPartition):
        header = {"op": "list", "partition": command.pid}
    if header is None:
        raise WireError(f"cannot encode command {command!r}")
    if retry:
        header["retry"] = int(retry)
    return header, data


def decode_command(pdu: Buffer) -> commands.OsdCommand:
    """Parse a command PDU back into a command object."""
    return decode_command_pdu(pdu).command


class CommandPdu(NamedTuple):
    """Decoded command envelope."""

    seq: Optional[int]
    retry: int
    command: commands.OsdCommand


def decode_command_pdu(pdu: Buffer) -> CommandPdu:
    """Parse a command PDU into its ``(seq, retry, command)`` envelope."""
    header, data = _unpack(pdu)
    seq = _seq_of(header)
    try:
        retry = int(header.get("retry", 0))
        return CommandPdu(seq, retry, _command_from(header, data))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed command PDU: {exc!r}") from None


def _command_from(header: Dict[str, Any], data: Buffer) -> commands.OsdCommand:
    op = header.get("op")
    if op == "create_partition":
        return commands.CreatePartition(int(header["partition"]))
    if op == "create":
        return commands.CreateObject(
            _object_id_from(header), ObjectKind(header.get("kind", "user"))
        )
    if op == "write":
        class_id = header.get("class_id")
        return commands.Write(
            _object_id_from(header),
            _materialize(data),
            class_id if class_id is None else int(class_id),
        )
    if op == "update":
        return commands.Update(
            _object_id_from(header), int(header["offset"]), _materialize(data)
        )
    if op == "read":
        return commands.Read(_object_id_from(header))
    if op == "remove":
        return commands.Remove(_object_id_from(header))
    if op == "set_attr":
        return commands.SetAttr(
            _object_id_from(header), str(header["key"]), str(header["value"])
        )
    if op == "get_attr":
        return commands.GetAttr(_object_id_from(header), str(header["key"]))
    if op == "list":
        return commands.ListPartition(int(header["partition"]))
    raise WireError(f"unknown command op {op!r}")


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode_response(response: OsdResponse, seq: Optional[int] = None) -> bytes:
    """Serialize a response to its PDU (sense + io summary + payload).

    ``seq`` echoes the request's sequence id so pipelined connections can
    match out-of-order responses to in-flight requests.
    """
    return _pack(_response_header(response), response.payload or b"", seq=seq)


def encode_response_parts(
    response: OsdResponse, seq: Optional[int] = None
) -> List[Buffer]:
    """Serialize a response as ``[header segment, payload]`` buffers.

    The vectored twin of :func:`encode_response` — a read payload is
    written straight from the object store's bytes, never copied into a
    concatenated PDU.
    """
    return _pack_parts(_response_header(response), response.payload or b"", seq=seq)


def _response_header(response: OsdResponse) -> Dict[str, Any]:
    return {
        "sense": int(response.sense),
        "elapsed": response.io.elapsed,
        "chunks_read": response.io.chunks_read,
        "chunks_written": response.io.chunks_written,
        "bytes_read": response.io.bytes_read,
        "bytes_written": response.io.bytes_written,
        "degraded": response.io.degraded,
        "has_payload": response.payload is not None,
    }


def decode_response(pdu: Buffer) -> OsdResponse:
    """Parse a response PDU."""
    return decode_response_pdu(pdu)[1]


def decode_response_pdu(pdu: Buffer) -> Tuple[Optional[int], OsdResponse]:
    """Parse a response PDU; returns ``(sequence id or None, response)``."""
    header, data = _unpack(pdu)
    seq = _seq_of(header)
    try:
        sense = SenseCode(int(header["sense"]))
        io = ArrayIoResult(
            elapsed=float(header.get("elapsed", 0.0)),
            chunks_read=int(header.get("chunks_read", 0)),
            chunks_written=int(header.get("chunks_written", 0)),
            bytes_read=int(header.get("bytes_read", 0)),
            bytes_written=int(header.get("bytes_written", 0)),
            degraded=bool(header.get("degraded", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed response PDU: {exc}") from None
    payload: Optional[bytes] = _materialize(data) if header.get("has_payload") else None
    return seq, OsdResponse(sense, io=io, payload=payload)
