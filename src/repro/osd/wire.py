"""Wire format for OSD commands and responses.

The real open-osd stack carries OSD service actions in SCSI CDBs over
iSCSI. This module provides the simulation's equivalent: every command and
response serializes to a PDU of

- a 4-byte big-endian header length,
- a JSON header (command kind, ids, attributes), and
- an opaque binary data segment (write payloads, read results).

Round-tripping through real bytes keeps the initiator/target boundary
honest — nothing crosses it except what the wire format can carry — and
gives the transport layer true payload sizes to bill.

Hardening (service-layer PR): headers and whole PDUs have explicit size
limits, headers must decode to a JSON object, and every protocol-level
failure raises :class:`~repro.errors.WireError` (an :class:`OsdError`
subclass) so transports can tell stream corruption from target errors.
PDU headers optionally carry a ``seq`` sequence id, which lets a pipelined
connection match out-of-order responses to their requests.

Zero-copy (throughput PR): every decode path accepts any buffer-protocol
object (``bytes``/``bytearray``/``memoryview``), so a stream decoder can
hand PDU slices straight off its receive buffer without materializing an
intermediate copy — the data segment is copied exactly once, into the
command/response payload. On the send side the ``encode_*_parts``
variants return the PDU as ``[header segment, payload]`` buffers for
``StreamWriter.writelines``, so large payloads are never concatenated
into a fresh PDU bytestring just to be written.

Wire format v2 (binary header PR): the JSON header costs real CPU on the
hot path — for a 128-byte object the ~200-byte JSON header outweighs the
payload. Version 2 replaces it with a fixed-width binary header packed by
``struct``: magic + version byte, command/response kind, object ids,
flags, sequence id, and the data-segment length. The rare fields the
fixed header cannot carry (attribute keys/values, out-of-range integers)
ride in an optional *extended header* — a length-prefixed JSON object
gated by a flag bit — so ``SetAttr``/``GetAttr`` and pathological values
keep exact round-trip fidelity without taxing the common case.

Both versions coexist on one stream: every valid v1 PDU begins with the
``0x00`` byte of its 4-byte big-endian header length (the header limit is
64 KiB), while every v2 PDU begins with the magic byte ``0xB2`` — so the
decoders auto-detect the version per PDU and old and new peers
interoperate. Encoders default to v1 (the format the committed property
tests pin); the service layer negotiates v2 per connection and passes
``version=WIRE_V2`` explicitly.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

from repro.errors import WireError
from repro.flash.array import ArrayIoResult
from repro.osd import commands
from repro.osd.sense import SenseCode
from repro.osd.target import OsdResponse
from repro.osd.types import ObjectId, ObjectKind

__all__ = [
    "Buffer",
    "CommandPdu",
    "MAX_HEADER_BYTES",
    "MAX_PDU_BYTES",
    "V2_MAGIC",
    "WIRE_V1",
    "WIRE_V2",
    "decode_command",
    "decode_command_pdu",
    "decode_response",
    "decode_response_pdu",
    "encode_command",
    "encode_command_parts",
    "encode_response",
    "encode_response_parts",
    "pdu_version",
    "salvage_seq",
]

#: Anything the decode paths and vectored send paths accept in place of
#: ``bytes``. (``collections.abc.Buffer`` needs 3.12; spell it out.)
Buffer = Union[bytes, bytearray, memoryview]

_LENGTH = struct.Struct(">I")

#: Hard ceiling on the JSON header segment. Headers are a handful of short
#: fields; anything bigger is corruption or an attack, not a command.
MAX_HEADER_BYTES = 64 * 1024

#: Hard ceiling on a whole PDU (header + data segment). Caps both what an
#: encoder will produce and what a decoder/server will buffer per request.
MAX_PDU_BYTES = 64 * 1024 * 1024

#: Wire format versions. v1 is the JSON-header format; v2 is the binary
#: fixed-width header. Encoders default to v1; decoders auto-detect.
WIRE_V1 = 1
WIRE_V2 = 2

#: First byte of every v2 PDU. A v1 PDU starts with the most significant
#: byte of its 4-byte header length, which the 64 KiB header limit pins to
#: ``0x00`` — so one byte disambiguates the versions.
V2_MAGIC = 0xB2

#: ``kind`` byte marking a v2 response PDU; command PDUs carry their
#: opcode (all < 0x80) in the same slot.
_V2_RESPONSE_KIND = 0x80

_V2_PREFIX = struct.Struct(">BBBB")
#: v2 command fixed header: magic, version, opcode, flags, seq, retry,
#: pid, oid, aux (op-specific: update offset / write class_id / create
#: kind index), data length. 44 bytes.
_V2_COMMAND = struct.Struct(">BBBBQIQQqI")
#: v2 response fixed header: magic, version, kind, flags, seq, sense
#: (signed — FAIL is -1), elapsed, chunks read/written, bytes
#: read/written, data length. 50 bytes.
_V2_RESPONSE = struct.Struct(">BBBBQhdIIQQI")
#: Length prefix of the optional extended JSON header.
_V2_EXT_LEN = struct.Struct(">H")
_V2_MAX_EXT_BYTES = 0xFFFF

#: Flag bits shared by both PDU kinds.
_V2_FLAG_EXT = 0x01  # extended JSON header follows the fixed header
_V2_FLAG_SEQ = 0x02  # seq field is meaningful (None otherwise)
#: Command-only: the aux field carries a Write class_id.
_V2_FLAG_AUX = 0x04
#: Response-only.
_V2_FLAG_PAYLOAD = 0x04
_V2_FLAG_DEGRADED = 0x08

_V2_OPCODES = {
    "create_partition": 0x01,
    "create": 0x02,
    "write": 0x03,
    "update": 0x04,
    "read": 0x05,
    "remove": 0x06,
    "set_attr": 0x07,
    "get_attr": 0x08,
    "list": 0x09,
}
_V2_OPS = {code: op for op, code in _V2_OPCODES.items()}
_V2_KINDS = tuple(ObjectKind)
_V2_KIND_INDEX = {kind.value: index for index, kind in enumerate(_V2_KINDS)}


def _pack_parts(
    header: Dict[str, Any], data: Buffer = b"", seq: Optional[int] = None
) -> List[Buffer]:
    """Serialize a PDU as ``[length-prefixed header, payload]`` buffers.

    The payload segment is passed through untouched — the zero-copy half
    of the send path. Size limits are enforced on the would-be total.
    """
    if seq is not None:
        header = dict(header, seq=int(seq))
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("ascii")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise WireError(
            f"PDU header of {len(header_bytes)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit"
        )
    total = _LENGTH.size + len(header_bytes) + len(data)
    if total > MAX_PDU_BYTES:
        raise WireError(
            f"PDU of {total} bytes exceeds the {MAX_PDU_BYTES}-byte limit"
        )
    parts: List[Buffer] = [_LENGTH.pack(len(header_bytes)) + header_bytes]
    if len(data):
        parts.append(data)
    return parts


def _unpack(pdu: Buffer) -> Tuple[Dict[str, Any], Buffer]:
    """Split a PDU into its header dict and data segment.

    Accepts any buffer-protocol object. The returned data segment is a
    zero-copy slice of the input when the input was a ``memoryview`` —
    callers own the materialization decision.
    """
    if len(pdu) > MAX_PDU_BYTES:
        raise WireError(
            f"PDU of {len(pdu)} bytes exceeds the {MAX_PDU_BYTES}-byte limit"
        )
    if len(pdu) < _LENGTH.size:
        raise WireError("truncated PDU: missing length prefix")
    (header_length,) = _LENGTH.unpack_from(pdu)
    if header_length > MAX_HEADER_BYTES:
        raise WireError(
            f"declared header of {header_length} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit"
        )
    end = _LENGTH.size + header_length
    if len(pdu) < end:
        raise WireError("truncated PDU: header shorter than declared")
    try:
        header = json.loads(bytes(pdu[_LENGTH.size : end]).decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed PDU header: {exc}") from None
    if not isinstance(header, dict):
        raise WireError(
            f"PDU header must be a JSON object, got {type(header).__name__}"
        )
    return header, pdu[end:]


def _materialize(data: Buffer) -> bytes:
    """Copy a data segment out of the decoder's buffer, exactly once."""
    return data if isinstance(data, bytes) else bytes(data)


def _seq_of(header: Dict[str, Any]) -> Optional[int]:
    seq = header.get("seq")
    if seq is None:
        return None
    try:
        return int(seq)
    except (TypeError, ValueError):
        raise WireError(f"malformed sequence id {seq!r}") from None


def _object_id_fields(object_id: ObjectId) -> Dict[str, Any]:
    return {"pid": object_id.pid, "oid": object_id.oid}


def _object_id_from(header: Dict[str, Any]) -> ObjectId:
    try:
        return ObjectId(int(header["pid"]), int(header["oid"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"PDU missing object id: {exc}") from None


# ----------------------------------------------------------------------
# Wire v2: binary fixed-width headers
# ----------------------------------------------------------------------
def pdu_version(pdu: Buffer) -> int:
    """Report the wire version of a PDU from its first byte."""
    if not len(pdu):
        raise WireError("truncated PDU: empty")
    return WIRE_V2 if pdu[0] == V2_MAGIC else WIRE_V1


def _fit_u64(value: int, ext: Dict[str, Any], key: str) -> int:
    """Pack ``value`` into an unsigned 64-bit field, spilling to ``ext``.

    Out-of-range values ride the extended JSON header under their v1 key
    and override the (zeroed) fixed field on decode — exact round-trip
    fidelity at any magnitude, zero cost in the common case.
    """
    if 0 <= value < 1 << 64:
        return value
    ext[key] = value
    return 0


def _fit_u32(value: int, ext: Dict[str, Any], key: str) -> int:
    if 0 <= value < 1 << 32:
        return value
    ext[key] = value
    return 0


def _fit_i64(value: int, ext: Dict[str, Any], key: str) -> int:
    if -(1 << 63) <= value < 1 << 63:
        return value
    ext[key] = value
    return 0


def _fit_i16(value: int, ext: Dict[str, Any], key: str) -> int:
    if -(1 << 15) <= value < 1 << 15:
        return value
    ext[key] = value
    return 0


def _v2_assemble(head: bytes, ext: Dict[str, Any], data: Buffer) -> List[Buffer]:
    """Append the optional extended header and enforce size limits."""
    if ext:
        ext_bytes = json.dumps(
            ext, sort_keys=True, separators=(",", ":")
        ).encode("ascii")
        if len(ext_bytes) > _V2_MAX_EXT_BYTES:
            raise WireError(
                f"v2 extended header of {len(ext_bytes)} bytes exceeds the "
                f"{_V2_MAX_EXT_BYTES}-byte limit"
            )
        head = head + _V2_EXT_LEN.pack(len(ext_bytes)) + ext_bytes
    total = len(head) + len(data)
    if total > MAX_PDU_BYTES:
        raise WireError(
            f"PDU of {total} bytes exceeds the {MAX_PDU_BYTES}-byte limit"
        )
    parts: List[Buffer] = [head]
    if len(data):
        parts.append(data)
    return parts


def _pack_v2_command_parts(
    header: Dict[str, Any], data: Buffer, seq: Optional[int]
) -> List[Buffer]:
    """Serialize a command envelope with the v2 binary header."""
    op = header["op"]
    opcode = _V2_OPCODES.get(op)
    if opcode is None:
        raise WireError(f"cannot encode command op {op!r} as wire v2")
    ext: Dict[str, Any] = {}
    flags = 0
    seq_field = 0
    if seq is not None:
        flags |= _V2_FLAG_SEQ
        seq_field = _fit_u64(int(seq), ext, "seq")
    retry = _fit_u32(int(header.get("retry", 0)), ext, "retry")
    pid = oid = aux = 0
    if op in ("create_partition", "list"):
        pid = _fit_u64(int(header["partition"]), ext, "partition")
    else:
        pid = _fit_u64(int(header["pid"]), ext, "pid")
        oid = _fit_u64(int(header["oid"]), ext, "oid")
    if op == "create":
        index = _V2_KIND_INDEX.get(header.get("kind"))
        if index is None:
            ext["kind"] = header.get("kind")
        else:
            aux = index
    elif op == "write":
        class_id = header.get("class_id")
        if class_id is not None:
            flags |= _V2_FLAG_AUX
            aux = _fit_i64(int(class_id), ext, "class_id")
    elif op == "update":
        aux = _fit_i64(int(header["offset"]), ext, "offset")
    elif op == "set_attr":
        ext["key"] = header["key"]
        ext["value"] = header["value"]
    elif op == "get_attr":
        ext["key"] = header["key"]
    if ext:
        flags |= _V2_FLAG_EXT
    head = _V2_COMMAND.pack(
        V2_MAGIC, WIRE_V2, opcode, flags,
        seq_field, retry, pid, oid, aux, len(data),
    )
    return _v2_assemble(head, ext, data)


def _pack_v2_response_parts(
    response: OsdResponse, seq: Optional[int]
) -> List[Buffer]:
    """Serialize a response with the v2 binary header."""
    ext: Dict[str, Any] = {}
    flags = 0
    seq_field = 0
    if seq is not None:
        flags |= _V2_FLAG_SEQ
        seq_field = _fit_u64(int(seq), ext, "seq")
    io = response.io
    data: Buffer = response.payload or b""
    if response.payload is not None:
        flags |= _V2_FLAG_PAYLOAD
    if io.degraded:
        flags |= _V2_FLAG_DEGRADED
    sense = _fit_i16(int(response.sense), ext, "sense")
    chunks_read = _fit_u32(io.chunks_read, ext, "chunks_read")
    chunks_written = _fit_u32(io.chunks_written, ext, "chunks_written")
    bytes_read = _fit_u64(io.bytes_read, ext, "bytes_read")
    bytes_written = _fit_u64(io.bytes_written, ext, "bytes_written")
    if ext:
        flags |= _V2_FLAG_EXT
    head = _V2_RESPONSE.pack(
        V2_MAGIC, WIRE_V2, _V2_RESPONSE_KIND, flags,
        seq_field, sense, io.elapsed,
        chunks_read, chunks_written, bytes_read, bytes_written, len(data),
    )
    return _v2_assemble(head, ext, data)


def _decode_v2(pdu: Buffer) -> Tuple[int, Dict[str, Any], Buffer]:
    """Parse a v2 PDU into ``(kind byte, header dict, data segment)``.

    The header dict uses the same keys as the v1 JSON header, so both
    versions share the envelope→object construction code below.
    """
    if len(pdu) > MAX_PDU_BYTES:
        raise WireError(
            f"PDU of {len(pdu)} bytes exceeds the {MAX_PDU_BYTES}-byte limit"
        )
    if len(pdu) < _V2_PREFIX.size:
        raise WireError("truncated PDU: missing v2 fixed header")
    magic, version, kind, flags = _V2_PREFIX.unpack_from(pdu)
    if magic != V2_MAGIC:
        raise WireError(f"bad v2 magic byte 0x{magic:02x}")
    if version != WIRE_V2:
        raise WireError(f"unsupported wire version {version}")
    header: Dict[str, Any]
    if kind == _V2_RESPONSE_KIND:
        layout = _V2_RESPONSE
        if len(pdu) < layout.size:
            raise WireError("truncated PDU: v2 response header cut short")
        fields = layout.unpack_from(pdu)
        seq_field = fields[4]
        header = {
            "sense": fields[5],
            "elapsed": fields[6],
            "chunks_read": fields[7],
            "chunks_written": fields[8],
            "bytes_read": fields[9],
            "bytes_written": fields[10],
            "degraded": bool(flags & _V2_FLAG_DEGRADED),
            "has_payload": bool(flags & _V2_FLAG_PAYLOAD),
        }
        data_length = fields[11]
    else:
        op = _V2_OPS.get(kind)
        if op is None:
            raise WireError(f"unknown v2 command opcode 0x{kind:02x}")
        layout = _V2_COMMAND
        if len(pdu) < layout.size:
            raise WireError("truncated PDU: v2 command header cut short")
        _, _, _, _, seq_field, retry, pid, oid, aux, data_length = (
            layout.unpack_from(pdu)
        )
        header = {"op": op}
        if retry:
            header["retry"] = retry
        if op in ("create_partition", "list"):
            header["partition"] = pid
        else:
            header["pid"] = pid
            header["oid"] = oid
        if op == "create":
            header["_kind_index"] = aux
        elif op == "write" and flags & _V2_FLAG_AUX:
            header["class_id"] = aux
        elif op == "update":
            header["offset"] = aux
    if flags & _V2_FLAG_SEQ:
        header["seq"] = seq_field
    offset = layout.size
    if flags & _V2_FLAG_EXT:
        if len(pdu) < offset + _V2_EXT_LEN.size:
            raise WireError("truncated PDU: missing v2 extended header length")
        (ext_length,) = _V2_EXT_LEN.unpack_from(pdu, offset)
        offset += _V2_EXT_LEN.size
        if len(pdu) < offset + ext_length:
            raise WireError(
                "truncated PDU: v2 extended header shorter than declared"
            )
        try:
            ext = json.loads(bytes(pdu[offset : offset + ext_length]).decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"malformed v2 extended header: {exc}") from None
        if not isinstance(ext, dict):
            raise WireError(
                f"v2 extended header must be a JSON object, got {type(ext).__name__}"
            )
        offset += ext_length
        header.update(ext)
    kind_index = header.pop("_kind_index", None)
    if kind_index is not None and "kind" not in header:
        if not 0 <= kind_index < len(_V2_KINDS):
            raise WireError(f"unknown v2 object kind index {kind_index}")
        header["kind"] = _V2_KINDS[kind_index].value
    data = pdu[offset:]
    if len(data) != data_length:
        raise WireError(
            f"v2 data segment of {len(data)} bytes does not match the "
            f"declared {data_length}"
        )
    return kind, header, data


def salvage_seq(pdu: Buffer) -> Optional[int]:
    """Best-effort sequence id recovery from a PDU of either version.

    A server that cannot decode a PDU still wants to address its failure
    reply, so the client's pending request fails fast instead of timing
    out. Returns ``None`` when no sequence id can be recovered.
    """
    try:
        if len(pdu) >= _V2_PREFIX.size and pdu[0] == V2_MAGIC:
            layout = (
                _V2_RESPONSE if pdu[2] == _V2_RESPONSE_KIND else _V2_COMMAND
            )
            if not (pdu[3] & _V2_FLAG_SEQ) or len(pdu) < layout.size:
                return None
            return int(layout.unpack_from(pdu)[4])
        header, _ = _unpack(pdu)
        return _seq_of(header)
    except WireError:
        return None


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def encode_command(
    command: commands.OsdCommand,
    seq: Optional[int] = None,
    retry: int = 0,
    *,
    version: int = WIRE_V1,
) -> bytes:
    """Serialize a command to its PDU.

    Args:
        command: the command to serialize.
        seq: optional sequence id for pipelined connections; echoed back on
            the matching response so it can be demultiplexed.
        retry: retransmission attempt number (0 = first send). Lets the
            server count retried commands in its service stats.
        version: wire format version — :data:`WIRE_V1` (JSON header,
            default) or :data:`WIRE_V2` (binary header).
    """
    return b"".join(
        bytes(part)
        for part in encode_command_parts(command, seq, retry, version=version)
    )


def encode_command_parts(
    command: commands.OsdCommand,
    seq: Optional[int] = None,
    retry: int = 0,
    *,
    version: int = WIRE_V1,
) -> List[Buffer]:
    """Serialize a command as ``[header segment, payload]`` buffers.

    The vectored twin of :func:`encode_command` — the write/update payload
    rides along un-copied, for ``writelines``-style send paths.
    """
    header, data = _command_envelope(command, retry)
    if version == WIRE_V2:
        return _pack_v2_command_parts(header, data, seq)
    if version != WIRE_V1:
        raise WireError(f"unsupported wire version {version!r}")
    return _pack_parts(header, data, seq=seq)


def _command_envelope(
    command: commands.OsdCommand, retry: int = 0
) -> Tuple[Dict[str, Any], bytes]:
    header: Optional[Dict[str, Any]] = None
    data = b""
    if isinstance(command, commands.CreatePartition):
        header = {"op": "create_partition", "partition": command.pid}
    elif isinstance(command, commands.CreateObject):
        header = {"op": "create", "kind": command.kind.value}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.Write):
        header = {"op": "write", "class_id": command.class_id}
        header.update(_object_id_fields(command.object_id))
        data = command.payload
    elif isinstance(command, commands.Update):
        header = {"op": "update", "offset": command.offset}
        header.update(_object_id_fields(command.object_id))
        data = command.payload
    elif isinstance(command, commands.Read):
        header = {"op": "read"}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.Remove):
        header = {"op": "remove"}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.SetAttr):
        header = {"op": "set_attr", "key": command.key, "value": command.value}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.GetAttr):
        header = {"op": "get_attr", "key": command.key}
        header.update(_object_id_fields(command.object_id))
    elif isinstance(command, commands.ListPartition):
        header = {"op": "list", "partition": command.pid}
    if header is None:
        raise WireError(f"cannot encode command {command!r}")
    if retry:
        header["retry"] = int(retry)
    return header, data


def decode_command(pdu: Buffer) -> commands.OsdCommand:
    """Parse a command PDU back into a command object."""
    return decode_command_pdu(pdu).command


class CommandPdu(NamedTuple):
    """Decoded command envelope."""

    seq: Optional[int]
    retry: int
    command: commands.OsdCommand
    version: int = WIRE_V1


def decode_command_pdu(pdu: Buffer) -> CommandPdu:
    """Parse a command PDU into its ``(seq, retry, command, version)``
    envelope. The wire version is auto-detected per PDU, letting a server
    negotiate per connection from the first command it sees."""
    if len(pdu) and pdu[0] == V2_MAGIC:
        kind, header, data = _decode_v2(pdu)
        if kind == _V2_RESPONSE_KIND:
            raise WireError("expected a command PDU, got a v2 response")
        version = WIRE_V2
    else:
        header, data = _unpack(pdu)
        version = WIRE_V1
    seq = _seq_of(header)
    try:
        retry = int(header.get("retry", 0))
        return CommandPdu(seq, retry, _command_from(header, data), version)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed command PDU: {exc!r}") from None


def _command_from(header: Dict[str, Any], data: Buffer) -> commands.OsdCommand:
    op = header.get("op")
    if op == "create_partition":
        return commands.CreatePartition(int(header["partition"]))
    if op == "create":
        return commands.CreateObject(
            _object_id_from(header), ObjectKind(header.get("kind", "user"))
        )
    if op == "write":
        class_id = header.get("class_id")
        return commands.Write(
            _object_id_from(header),
            _materialize(data),
            class_id if class_id is None else int(class_id),
        )
    if op == "update":
        return commands.Update(
            _object_id_from(header), int(header["offset"]), _materialize(data)
        )
    if op == "read":
        return commands.Read(_object_id_from(header))
    if op == "remove":
        return commands.Remove(_object_id_from(header))
    if op == "set_attr":
        return commands.SetAttr(
            _object_id_from(header), str(header["key"]), str(header["value"])
        )
    if op == "get_attr":
        return commands.GetAttr(_object_id_from(header), str(header["key"]))
    if op == "list":
        return commands.ListPartition(int(header["partition"]))
    raise WireError(f"unknown command op {op!r}")


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode_response(
    response: OsdResponse,
    seq: Optional[int] = None,
    *,
    version: int = WIRE_V1,
) -> bytes:
    """Serialize a response to its PDU (sense + io summary + payload).

    ``seq`` echoes the request's sequence id so pipelined connections can
    match out-of-order responses to in-flight requests.
    """
    return b"".join(
        bytes(part)
        for part in encode_response_parts(response, seq, version=version)
    )


def encode_response_parts(
    response: OsdResponse,
    seq: Optional[int] = None,
    *,
    version: int = WIRE_V1,
) -> List[Buffer]:
    """Serialize a response as ``[header segment, payload]`` buffers.

    The vectored twin of :func:`encode_response` — a read payload is
    written straight from the object store's bytes, never copied into a
    concatenated PDU.
    """
    if version == WIRE_V2:
        return _pack_v2_response_parts(response, seq)
    if version != WIRE_V1:
        raise WireError(f"unsupported wire version {version!r}")
    return _pack_parts(_response_header(response), response.payload or b"", seq=seq)


def _response_header(response: OsdResponse) -> Dict[str, Any]:
    return {
        "sense": int(response.sense),
        "elapsed": response.io.elapsed,
        "chunks_read": response.io.chunks_read,
        "chunks_written": response.io.chunks_written,
        "bytes_read": response.io.bytes_read,
        "bytes_written": response.io.bytes_written,
        "degraded": response.io.degraded,
        "has_payload": response.payload is not None,
    }


def decode_response(pdu: Buffer) -> OsdResponse:
    """Parse a response PDU."""
    return decode_response_pdu(pdu)[1]


def decode_response_pdu(pdu: Buffer) -> Tuple[Optional[int], OsdResponse]:
    """Parse a response PDU; returns ``(sequence id or None, response)``.

    The wire version is auto-detected per PDU from its first byte.
    """
    if len(pdu) and pdu[0] == V2_MAGIC:
        kind, header, data = _decode_v2(pdu)
        if kind != _V2_RESPONSE_KIND:
            raise WireError("expected a response PDU, got a v2 command")
    else:
        header, data = _unpack(pdu)
    seq = _seq_of(header)
    try:
        sense = SenseCode(int(header["sense"]))
        io = ArrayIoResult(
            elapsed=float(header.get("elapsed", 0.0)),
            chunks_read=int(header.get("chunks_read", 0)),
            chunks_written=int(header.get("chunks_written", 0)),
            bytes_read=int(header.get("bytes_read", 0)),
            bytes_written=int(header.get("bytes_written", 0)),
            degraded=bool(header.get("degraded", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed response PDU: {exc}") from None
    payload: Optional[bytes] = _materialize(data) if header.get("has_payload") else None
    return seq, OsdResponse(sense, io=io, payload=payload)
