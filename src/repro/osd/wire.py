"""Wire format for OSD commands and responses.

The real open-osd stack carries OSD service actions in SCSI CDBs over
iSCSI. This module provides the simulation's equivalent: every command and
response serializes to a PDU of

- a 4-byte big-endian header length,
- a JSON header (command kind, ids, attributes), and
- an opaque binary data segment (write payloads, read results).

Round-tripping through real bytes keeps the initiator/target boundary
honest — nothing crosses it except what the wire format can carry — and
gives the transport layer true payload sizes to bill.
"""

from __future__ import annotations

import json
import struct
from typing import Optional, Tuple

from repro.errors import OsdError
from repro.flash.array import ArrayIoResult
from repro.osd import commands
from repro.osd.sense import SenseCode
from repro.osd.target import OsdResponse
from repro.osd.types import ObjectId, ObjectKind

__all__ = ["decode_command", "decode_response", "encode_command", "encode_response"]

_LENGTH = struct.Struct(">I")


def _pack(header: dict, data: bytes = b"") -> bytes:
    header_bytes = json.dumps(header, sort_keys=True).encode("ascii")
    return _LENGTH.pack(len(header_bytes)) + header_bytes + data


def _unpack(pdu: bytes) -> Tuple[dict, bytes]:
    if len(pdu) < _LENGTH.size:
        raise OsdError("truncated PDU: missing length prefix")
    (header_length,) = _LENGTH.unpack_from(pdu)
    end = _LENGTH.size + header_length
    if len(pdu) < end:
        raise OsdError("truncated PDU: header shorter than declared")
    try:
        header = json.loads(pdu[_LENGTH.size : end].decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise OsdError(f"malformed PDU header: {exc}") from None
    return header, pdu[end:]


def _object_id_fields(object_id: ObjectId) -> dict:
    return {"pid": object_id.pid, "oid": object_id.oid}


def _object_id_from(header: dict) -> ObjectId:
    try:
        return ObjectId(int(header["pid"]), int(header["oid"]))
    except (KeyError, ValueError) as exc:
        raise OsdError(f"PDU missing object id: {exc}") from None


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def encode_command(command: commands.OsdCommand) -> bytes:
    """Serialize a command to its PDU."""
    if isinstance(command, commands.CreatePartition):
        return _pack({"op": "create_partition", "partition": command.pid})
    if isinstance(command, commands.CreateObject):
        header = {"op": "create", "kind": command.kind.value}
        header.update(_object_id_fields(command.object_id))
        return _pack(header)
    if isinstance(command, commands.Write):
        header = {"op": "write", "class_id": command.class_id}
        header.update(_object_id_fields(command.object_id))
        return _pack(header, command.payload)
    if isinstance(command, commands.Update):
        header = {"op": "update", "offset": command.offset}
        header.update(_object_id_fields(command.object_id))
        return _pack(header, command.payload)
    if isinstance(command, commands.Read):
        header = {"op": "read"}
        header.update(_object_id_fields(command.object_id))
        return _pack(header)
    if isinstance(command, commands.Remove):
        header = {"op": "remove"}
        header.update(_object_id_fields(command.object_id))
        return _pack(header)
    if isinstance(command, commands.SetAttr):
        header = {"op": "set_attr", "key": command.key, "value": command.value}
        header.update(_object_id_fields(command.object_id))
        return _pack(header)
    if isinstance(command, commands.GetAttr):
        header = {"op": "get_attr", "key": command.key}
        header.update(_object_id_fields(command.object_id))
        return _pack(header)
    if isinstance(command, commands.ListPartition):
        return _pack({"op": "list", "partition": command.pid})
    raise OsdError(f"cannot encode command {command!r}")


def decode_command(pdu: bytes) -> commands.OsdCommand:
    """Parse a command PDU back into a command object."""
    header, data = _unpack(pdu)
    op = header.get("op")
    if op == "create_partition":
        return commands.CreatePartition(int(header["partition"]))
    if op == "create":
        return commands.CreateObject(
            _object_id_from(header), ObjectKind(header.get("kind", "user"))
        )
    if op == "write":
        class_id = header.get("class_id")
        return commands.Write(
            _object_id_from(header),
            data,
            class_id if class_id is None else int(class_id),
        )
    if op == "update":
        return commands.Update(_object_id_from(header), int(header["offset"]), data)
    if op == "read":
        return commands.Read(_object_id_from(header))
    if op == "remove":
        return commands.Remove(_object_id_from(header))
    if op == "set_attr":
        return commands.SetAttr(
            _object_id_from(header), str(header["key"]), str(header["value"])
        )
    if op == "get_attr":
        return commands.GetAttr(_object_id_from(header), str(header["key"]))
    if op == "list":
        return commands.ListPartition(int(header["partition"]))
    raise OsdError(f"unknown command op {op!r}")


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode_response(response: OsdResponse) -> bytes:
    """Serialize a response to its PDU (sense + io summary + payload)."""
    header = {
        "sense": int(response.sense),
        "elapsed": response.io.elapsed,
        "chunks_read": response.io.chunks_read,
        "chunks_written": response.io.chunks_written,
        "bytes_read": response.io.bytes_read,
        "bytes_written": response.io.bytes_written,
        "degraded": response.io.degraded,
        "has_payload": response.payload is not None,
    }
    return _pack(header, response.payload or b"")


def decode_response(pdu: bytes) -> OsdResponse:
    """Parse a response PDU."""
    header, data = _unpack(pdu)
    try:
        sense = SenseCode(int(header["sense"]))
    except (KeyError, ValueError) as exc:
        raise OsdError(f"malformed response PDU: {exc}") from None
    io = ArrayIoResult(
        elapsed=float(header.get("elapsed", 0.0)),
        chunks_read=int(header.get("chunks_read", 0)),
        chunks_written=int(header.get("chunks_written", 0)),
        bytes_read=int(header.get("bytes_read", 0)),
        bytes_written=int(header.get("bytes_written", 0)),
        degraded=bool(header.get("degraded", False)),
    )
    payload: Optional[bytes] = data if header.get("has_payload") else None
    return OsdResponse(sense, io=io, payload=payload)
