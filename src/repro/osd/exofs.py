"""Minimal exofs-like volume layout (paper §II-A, Table I).

In the real stack, the exofs file system on the initiator stores its super
block, device table, and root directory as reserved objects in partition
``0x10000``. Formatting a Reo volume creates the same layout here, tagging
the reserved objects as Class 0 (system metadata) so they receive the
strongest protection (full replication across all devices — paper §IV-C.4
compares this with how ext4 replicates superblocks).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.osd.sense import SenseCode
from repro.osd.target import OsdTarget
from repro.osd.types import (
    DEVICE_TABLE,
    PARTITION_BASE,
    ROOT_DIRECTORY,
    SUPER_BLOCK,
    ObjectId,
    ObjectKind,
)
from repro.errors import OsdError

__all__ = [
    "ExofsNamespace",
    "format_volume",
    "read_device_table",
    "read_super_block",
]

_EXOFS_MAGIC = "exofs-reo"
_VERSION = 1


def _super_block_payload(target: OsdTarget) -> bytes:
    content = {
        "magic": _EXOFS_MAGIC,
        "version": _VERSION,
        "chunk_size": target.array.chunk_size,
        "num_devices": target.array.width,
    }
    return json.dumps(content, sort_keys=True).encode("ascii")


def _device_table_payload(target: OsdTarget) -> bytes:
    devices = [
        {
            "device_id": device.device_id,
            "capacity_bytes": device.capacity_bytes,
            "state": device.state.value,
            "generation": device.generation,
        }
        for device in target.array.devices
    ]
    return json.dumps({"devices": devices}, sort_keys=True).encode("ascii")


def _root_directory_payload() -> bytes:
    # An empty root directory: no entries yet. The paper notes this is the
    # largest metadata object at 4 KB; we store the logical content only.
    return json.dumps({"entries": {}}, sort_keys=True).encode("ascii")


def format_volume(target: OsdTarget) -> None:
    """Create partition 0x10000 and the reserved Class-0 metadata objects.

    Raises:
        OsdError: the volume is already formatted or a metadata write fails.
    """
    if target.has_partition(PARTITION_BASE):
        raise OsdError("volume is already formatted")
    response = target.create_partition(PARTITION_BASE)
    if not response.ok:
        raise OsdError("failed to create partition 0x10000")
    metadata: Dict[ObjectId, bytes] = {
        SUPER_BLOCK: _super_block_payload(target),
        DEVICE_TABLE: _device_table_payload(target),
        ROOT_DIRECTORY: _root_directory_payload(),
    }
    for object_id, payload in metadata.items():
        response = target.write_object(
            object_id, payload, class_id=0, kind=ObjectKind.COLLECTION
        )
        if response.sense is not SenseCode.OK:
            raise OsdError(f"failed to write metadata object {object_id}")


class ExofsNamespace:
    """A path-based file namespace over OSD objects (paper §II-A).

    In exofs, "all the file system metadata (e.g., superblock, inode),
    regular files, and directories are stored in the OSD in the form of user
    objects". This class reproduces that mapping:

    - a **directory** is a collection-kind object holding a JSON table of
      ``name -> OID`` entries, classified as system metadata (Class 0) so it
      is fully replicated;
    - a **file** is a user object holding raw bytes, classified by the
      caller (Class 3 by default).

    The root directory is the reserved exofs object (Table I). Paths are
    ``/``-separated; all operations resolve components through directory
    objects, so every lookup is a real OSD read.
    """

    def __init__(self, target: OsdTarget, first_oid: int = 0x100000) -> None:
        if not target.has_partition(PARTITION_BASE):
            raise OsdError("volume is not formatted; call format_volume first")
        self.target = target
        self._next_oid = first_oid

    # ------------------------------------------------------------------
    # Path plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _split(path: str):
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise OsdError("path must name at least one component")
        return parts

    def _read_directory(self, object_id: ObjectId) -> dict:
        response = self.target.read_object(object_id)
        if not response.ok or response.payload is None:
            raise OsdError(f"directory object {object_id} unreadable")
        return json.loads(response.payload)

    def _write_directory(self, object_id: ObjectId, table: dict) -> None:
        payload = json.dumps(table, sort_keys=True).encode("ascii")
        response = self.target.write_object(
            object_id, payload, class_id=0, kind=ObjectKind.COLLECTION
        )
        if not response.ok:
            raise OsdError(f"directory object {object_id} unwritable")

    def _resolve_dir(self, parts) -> ObjectId:
        """Walk directory components; returns the directory object id."""
        current = ROOT_DIRECTORY
        for component in parts:
            table = self._read_directory(current)
            entry = table["entries"].get(component)
            if entry is None or entry["type"] != "dir":
                raise OsdError(f"no such directory: {component!r}")
            current = ObjectId(PARTITION_BASE, int(entry["oid"]))
        return current

    def _allocate(self) -> ObjectId:
        object_id = ObjectId(PARTITION_BASE, self._next_oid)
        self._next_oid += 1
        return object_id

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> ObjectId:
        """Create a directory; parents must already exist."""
        parts = self._split(path)
        parent_id = self._resolve_dir(parts[:-1])
        table = self._read_directory(parent_id)
        name = parts[-1]
        if name in table["entries"]:
            raise OsdError(f"{path!r} already exists")
        directory_id = self._allocate()
        self._write_directory(directory_id, {"entries": {}})
        table["entries"][name] = {"type": "dir", "oid": directory_id.oid}
        self._write_directory(parent_id, table)
        return directory_id

    def listdir(self, path: str = "/"):
        """Entry names in a directory, sorted."""
        parts = [part for part in path.split("/") if part]
        directory_id = self._resolve_dir(parts)
        return sorted(self._read_directory(directory_id)["entries"])

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def create_file(self, path: str, data: bytes, class_id: int = 3) -> ObjectId:
        """Create a file object and link it into its directory."""
        parts = self._split(path)
        parent_id = self._resolve_dir(parts[:-1])
        table = self._read_directory(parent_id)
        name = parts[-1]
        if name in table["entries"]:
            raise OsdError(f"{path!r} already exists")
        file_id = self._allocate()
        response = self.target.write_object(file_id, data, class_id=class_id)
        if not response.ok:
            raise OsdError(f"cannot write file object for {path!r}")
        table["entries"][name] = {"type": "file", "oid": file_id.oid}
        self._write_directory(parent_id, table)
        return file_id

    def lookup(self, path: str) -> ObjectId:
        """Resolve a *file* path to its object id (directories are rejected)."""
        parts = self._split(path)
        parent_id = self._resolve_dir(parts[:-1])
        entry = self._read_directory(parent_id)["entries"].get(parts[-1])
        if entry is None or entry["type"] != "file":
            raise OsdError(f"no such file: {path!r}")
        return ObjectId(PARTITION_BASE, int(entry["oid"]))

    def read_file(self, path: str) -> bytes:
        response = self.target.read_object(self.lookup(path))
        if not response.ok or response.payload is None:
            raise OsdError(f"file {path!r} unreadable")
        return response.payload

    def write_file(self, path: str, data: bytes) -> None:
        """Overwrite an existing file's content (class preserved)."""
        response = self.target.write_object(self.lookup(path), data)
        if not response.ok:
            raise OsdError(f"file {path!r} unwritable")

    def remove(self, path: str) -> None:
        """Unlink a file or an *empty* directory."""
        parts = self._split(path)
        parent_id = self._resolve_dir(parts[:-1])
        table = self._read_directory(parent_id)
        entry = table["entries"].get(parts[-1])
        if entry is None:
            raise OsdError(f"no such entry: {path!r}")
        object_id = ObjectId(PARTITION_BASE, int(entry["oid"]))
        if entry["type"] == "dir" and self._read_directory(object_id)["entries"]:
            raise OsdError(f"directory {path!r} is not empty")
        self.target.remove_object(object_id)
        del table["entries"][parts[-1]]
        self._write_directory(parent_id, table)

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except OsdError:
            pass
        try:
            self._resolve_dir(self._split(path))
            return True
        except OsdError:
            return False


def read_super_block(target: OsdTarget) -> dict:
    """Decode the super block object; raises if missing or corrupted."""
    response = target.read_object(SUPER_BLOCK)
    if not response.ok or response.payload is None:
        raise OsdError("super block unreadable")
    return json.loads(response.payload)


def read_device_table(target: OsdTarget) -> dict:
    """Decode the device table object; raises if missing or corrupted."""
    response = target.read_object(DEVICE_TABLE)
    if not response.ok or response.payload is None:
        raise OsdError("device table unreadable")
    return json.loads(response.payload)
