"""The OSD target: the server side of the object cache (paper §V).

The target owns the flash array and executes object commands. As in the
paper's prototype — where the stock osd-target's host file system and SQLite
metadata were replaced by the flash array and a hash table — object metadata
here is a plain dict keyed by :class:`~repro.osd.types.ObjectId`.

The target is policy-agnostic: it maps an object's *class id* to a
:class:`~repro.flash.stripe.RedundancyScheme` through a pluggable
``scheme_for(class_id)`` callable. Reo's differentiated policy and the
uniform baselines (paper §VI) are both implemented in
:mod:`repro.core.policy` and injected here, so every experiment runs the
same target code and varies only the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.errors import (
    ControlMessageError,
    FlashError,
    ObjectNotFoundError,
    UnrecoverableDataError,
)
from repro.flash.array import ArrayIoResult, FlashArray, ObjectHealth
from repro.flash.stripe import ParityScheme, RedundancyScheme
from repro.osd.control import QueryMessage, SetClassMessage, parse_control_message
from repro.osd.sense import SenseCode
from repro.osd.types import CONTROL_OBJECT, ROOT_OBJECT, ObjectId, ObjectInfo, ObjectKind

__all__ = ["OsdResponse", "OsdTarget", "SchemePolicy"]

#: Maps a Reo class id to the redundancy scheme objects of that class get.
SchemePolicy = Callable[[int], RedundancyScheme]


def _default_policy(_class_id: int) -> RedundancyScheme:
    """Uniform no-redundancy policy used when none is injected."""
    return ParityScheme(0)


@dataclass
class OsdResponse:
    """Outcome of one OSD command."""

    sense: SenseCode
    io: ArrayIoResult = field(default_factory=ArrayIoResult)
    payload: Optional[bytes] = None

    @property
    def ok(self) -> bool:
        return self.sense is SenseCode.OK


class OsdTarget:
    """Executes object commands against a flash array."""

    def __init__(
        self,
        array: FlashArray,
        policy: Optional[SchemePolicy] = None,
    ) -> None:
        self.array = array
        self.policy: SchemePolicy = policy or _default_policy
        self._objects: Dict[ObjectId, ObjectInfo] = {}
        self._partitions: Dict[int, Set[ObjectId]] = {}
        #: Set by the recovery manager while reconstruction is in progress;
        #: surfaces to initiators as sense 0x65/0x66 on queries.
        self.recovery_active = False
        #: True once a recovery pass has completed (drives sense 0x66).
        self.recovery_completed = False
        #: Set by the redundancy budget manager when the parity reserve is
        #: exhausted; surfaces as sense 0x67.
        self.redundancy_reserve_full = False

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def create_partition(self, pid: int) -> OsdResponse:
        """Create a partition object (OID 0) for ``pid``."""
        partition_id = ObjectId(pid, 0)
        if pid in self._partitions:
            return OsdResponse(SenseCode.FAIL)
        self._partitions[pid] = set()
        self._objects[partition_id] = ObjectInfo(
            object_id=partition_id,
            kind=ObjectKind.PARTITION,
            class_id=0,
            created_at=self.array.clock.now,
        )
        return OsdResponse(SenseCode.OK)

    def has_partition(self, pid: int) -> bool:
        return pid in self._partitions

    def exists(self, object_id: ObjectId) -> bool:
        return object_id in self._objects

    def get_info(self, object_id: ObjectId) -> ObjectInfo:
        try:
            return self._objects[object_id]
        except KeyError:
            raise ObjectNotFoundError(f"no object {object_id}") from None

    def list_partition(self, pid: int) -> List[ObjectId]:
        """User/collection objects within a partition, sorted by id."""
        if pid not in self._partitions:
            raise ObjectNotFoundError(f"no partition {pid:#x}")
        return sorted(self._partitions[pid])

    def user_objects(self) -> Iterable[ObjectInfo]:
        return (
            info
            for info in self._objects.values()
            if info.kind in (ObjectKind.USER, ObjectKind.COLLECTION)
        )

    def objects_in_class(self, class_id: int) -> List[ObjectInfo]:
        return [info for info in self.user_objects() if info.class_id == class_id]

    @property
    def object_count(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write_object(
        self,
        object_id: ObjectId,
        payload: bytes,
        class_id: Optional[int] = None,
        kind: ObjectKind = ObjectKind.USER,
    ) -> OsdResponse:
        """Create or overwrite an object, encoding it per its class's scheme.

        Writes to the control object are intercepted and interpreted as
        control messages (paper §IV-C.2).
        """
        if object_id == CONTROL_OBJECT:
            return self._handle_control_write(payload)
        if object_id.pid not in self._partitions:
            return OsdResponse(SenseCode.FAIL)
        existing = self._objects.get(object_id)
        if existing is not None:
            effective_class = class_id if class_id is not None else existing.class_id
        else:
            effective_class = class_id if class_id is not None else 3
        scheme = self.policy(effective_class)
        try:
            io = self.array.write_object(object_id, payload, scheme, overwrite=True)
        except UnrecoverableDataError:
            return OsdResponse(SenseCode.DATA_CORRUPTED)
        if existing is None:
            info = ObjectInfo(
                object_id=object_id,
                kind=kind,
                size=len(payload),
                class_id=effective_class,
                created_at=self.array.clock.now,
            )
            info.attributes["reo.class_id"] = str(effective_class)
            self._objects[object_id] = info
            self._partitions[object_id.pid].add(object_id)
        else:
            existing.size = len(payload)
            existing.class_id = effective_class
        return OsdResponse(SenseCode.OK, io=io)

    def update_object(self, object_id: ObjectId, offset: int, data: bytes) -> OsdResponse:
        """Partial in-place WRITE at a byte offset (paper §II-B update path).

        Touches only the affected stripes, choosing delta vs direct parity
        updating per stripe by fragment-read cost. Fails (0x63) when the
        object is degraded — repair precedes update.
        """
        if object_id not in self._objects:
            return OsdResponse(SenseCode.FAIL)
        if object_id not in self.array:
            return OsdResponse(SenseCode.FAIL)
        if self.array.object_health(object_id) is not ObjectHealth.HEALTHY:
            return OsdResponse(SenseCode.DATA_CORRUPTED)
        try:
            io = self.array.update_range(object_id, offset, data)
        except FlashError:
            return OsdResponse(SenseCode.FAIL)
        return OsdResponse(SenseCode.OK, io=io)

    def read_object(self, object_id: ObjectId) -> OsdResponse:
        """Read an object; degraded stripes are decoded transparently."""
        if object_id not in self._objects:
            return OsdResponse(SenseCode.FAIL)
        try:
            payload, io = self.array.read_object(object_id)
        except (UnrecoverableDataError, ObjectNotFoundError):
            return OsdResponse(SenseCode.DATA_CORRUPTED)
        return OsdResponse(SenseCode.OK, io=io, payload=payload)

    def remove_object(self, object_id: ObjectId) -> OsdResponse:
        info = self._objects.pop(object_id, None)
        if info is None:
            return OsdResponse(SenseCode.FAIL)
        self._partitions.get(object_id.pid, set()).discard(object_id)
        if object_id in self.array:
            io = self.array.delete_object(object_id)
        else:
            io = ArrayIoResult()
        return OsdResponse(SenseCode.OK, io=io)

    # ------------------------------------------------------------------
    # Classification (differentiated redundancy hookup)
    # ------------------------------------------------------------------
    def set_class(self, object_id: ObjectId, class_id: int) -> OsdResponse:
        """Reclassify an object, re-encoding it if its scheme changes.

        Re-encoding reads the object (degraded reads allowed) and rewrites it
        under the new scheme; a lost object cannot be reclassified and
        returns sense 0x63.
        """
        info = self._objects.get(object_id)
        if info is None:
            return OsdResponse(SenseCode.FAIL)
        old_scheme = self.policy(info.class_id)
        new_scheme = self.policy(class_id)
        info.class_id = class_id
        # The classifier is "a label ... in effect a semantic hint" attached
        # to the object (§IV-B); mirror it on the OSD attributes page.
        info.attributes["reo.class_id"] = str(class_id)
        if old_scheme == new_scheme or object_id not in self.array:
            return OsdResponse(SenseCode.OK)
        try:
            payload, read_io = self.array.read_object(object_id)
        except UnrecoverableDataError:
            return OsdResponse(SenseCode.DATA_CORRUPTED)
        write_io = self.array.write_object(object_id, payload, new_scheme, overwrite=True)
        read_io.merge(write_io)
        return OsdResponse(SenseCode.OK, io=read_io)

    # ------------------------------------------------------------------
    # Control object (paper §IV-C.2)
    # ------------------------------------------------------------------
    def _handle_control_write(self, payload: bytes) -> OsdResponse:
        try:
            message = parse_control_message(payload)
        except ControlMessageError:
            return OsdResponse(SenseCode.FAIL)
        # A control write is a few dozen bytes, written synchronously
        # (fsync); bill one small device write on the simulated clock.
        io = ArrayIoResult(
            elapsed=self.array.devices[0].model.write_time(len(payload)),
            chunks_written=1,
            bytes_written=len(payload),
        )
        if isinstance(message, SetClassMessage):
            response = self.set_class(message.object_id, message.class_id)
            response.io.merge(io)
            return response
        assert isinstance(message, QueryMessage)
        sense = self.query(message)
        return OsdResponse(sense, io=io)

    def query(self, message: QueryMessage) -> SenseCode:
        """Answer a #QUERY# status probe (paper Table III semantics).

        A query against the root object (PID 0/OID 0) reports the global
        recovery state: 0x65 while reconstruction runs, 0x66 once it has
        completed, 0x0 when no recovery ever happened.
        """
        if message.object_id == ROOT_OBJECT:
            if self.recovery_active:
                return SenseCode.RECOVERY_STARTED
            if self.recovery_completed:
                return SenseCode.RECOVERY_ENDED
            return SenseCode.OK
        if message.object_id not in self._objects:
            if message.operation == "W":
                return self._query_write_admission(message.size)
            return SenseCode.FAIL
        if message.object_id not in self.array:
            # Metadata-only object (e.g. partition object): always fine.
            return SenseCode.OK
        health = self.array.object_health(message.object_id)
        if health is ObjectHealth.LOST:
            return SenseCode.DATA_CORRUPTED
        if health is ObjectHealth.DEGRADED and self.recovery_active:
            return SenseCode.RECOVERY_STARTED
        return SenseCode.OK

    def _query_write_admission(self, size: int) -> SenseCode:
        if self.redundancy_reserve_full:
            return SenseCode.REDUNDANCY_FULL
        if size > self.array.free_bytes:
            return SenseCode.CACHE_FULL
        return SenseCode.OK

    def __repr__(self) -> str:
        return f"OsdTarget(objects={len(self._objects)}, array={self.array!r})"
