"""The control-object message codec (paper §IV-C.2).

Reo reserves object OID ``0x10004`` as a communication point between the
cache manager and the object storage. Control messages are small strings
written synchronously to that object:

- **Classification command** — header ``#SETID#`` followed by the target
  object's PID, OID, and the class id (CID)::

      #SETID#,0x10000,0x10005,2

- **Query command** — header ``#QUERY#`` followed by PID, OID, the operation
  type (``R``/``W``), the offset, and the size::

      #QUERY#,0x10000,0x10005,R,0,4096

The target decodes the message and performs the corresponding operation; the
initiator reads back a sense code (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlMessageError
from repro.osd.types import ObjectId

__all__ = [
    "QueryMessage",
    "SET_CLASS_HEADER",
    "QUERY_HEADER",
    "SetClassMessage",
    "parse_control_message",
]

SET_CLASS_HEADER = "#SETID#"
QUERY_HEADER = "#QUERY#"
_SEPARATOR = ","


@dataclass(frozen=True)
class SetClassMessage:
    """Deliver a classifier (class id) for a specified data object."""

    object_id: ObjectId
    class_id: int

    def encode(self) -> bytes:
        fields = [
            SET_CLASS_HEADER,
            f"{self.object_id.pid:#x}",
            f"{self.object_id.oid:#x}",
            str(self.class_id),
        ]
        return _SEPARATOR.join(fields).encode("ascii")


@dataclass(frozen=True)
class QueryMessage:
    """Retrieve the status of a queried object (read or write intent)."""

    object_id: ObjectId
    operation: str  # "R" or "W"
    offset: int = 0
    size: int = 0

    def __post_init__(self) -> None:
        if self.operation not in ("R", "W"):
            raise ControlMessageError(f"operation must be 'R' or 'W', got {self.operation!r}")
        if self.offset < 0 or self.size < 0:
            raise ControlMessageError("offset and size must be non-negative")

    def encode(self) -> bytes:
        fields = [
            QUERY_HEADER,
            f"{self.object_id.pid:#x}",
            f"{self.object_id.oid:#x}",
            self.operation,
            str(self.offset),
            str(self.size),
        ]
        return _SEPARATOR.join(fields).encode("ascii")


def _parse_int(token: str, what: str) -> int:
    try:
        return int(token, 0)  # accepts both decimal and 0x-prefixed hex
    except ValueError:
        raise ControlMessageError(f"malformed {what}: {token!r}") from None


def parse_control_message(payload: bytes) -> "SetClassMessage | QueryMessage":
    """Decode a control-object write into a message object.

    Raises:
        ControlMessageError: unknown header, wrong field count, or malformed
            numeric fields.
    """
    try:
        text = payload.decode("ascii")
    except UnicodeDecodeError:
        raise ControlMessageError("control message is not ASCII") from None
    fields = text.split(_SEPARATOR)
    header = fields[0] if fields else ""
    if header == SET_CLASS_HEADER:
        if len(fields) != 4:
            raise ControlMessageError(
                f"classification command needs 4 fields, got {len(fields)}"
            )
        object_id = ObjectId(_parse_int(fields[1], "PID"), _parse_int(fields[2], "OID"))
        return SetClassMessage(object_id, _parse_int(fields[3], "class id"))
    if header == QUERY_HEADER:
        if len(fields) != 6:
            raise ControlMessageError(f"query command needs 6 fields, got {len(fields)}")
        object_id = ObjectId(_parse_int(fields[1], "PID"), _parse_int(fields[2], "OID"))
        operation = fields[3]
        if operation not in ("R", "W"):
            raise ControlMessageError(f"unknown operation type {operation!r}")
        return QueryMessage(
            object_id,
            operation,
            _parse_int(fields[4], "offset"),
            _parse_int(fields[5], "size"),
        )
    raise ControlMessageError(f"unknown control header {header!r}")
