"""iSCSI-like transport between the OSD initiator and target.

The paper's prototype emulates OSD with "iSCSI protocol coupled with the
current block-based devices" (§II-A): the initiator is the host side of an
iSCSI session, the target the server side. :class:`IscsiChannel` models that
session: commands and responses cross it as *serialized PDUs*
(:mod:`repro.osd.wire`), and the link bills simulated transfer time with a
``busy_until`` queue, so command traffic contends on the wire like data
does.

The channel is optional — `OsdInitiator` works in-process by default, which
is what the experiment calibration uses. Wiring a channel in adds per-command
network latency and an honest serialization boundary.

This module also owns the *stream framing* shared by every transport that
carries PDUs over a byte stream (this simulated channel and the real
sockets in :mod:`repro.net`): each PDU travels as a 4-byte big-endian
length prefix followed by the PDU bytes. The PDU's internal header length
does not bound its data segment, so the outer frame is what lets a stream
receiver know where one PDU ends and the next begins.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import OsdError, WireError
from repro.flash.latency import NETWORK_10GBE, ServiceTimeModel
from repro.osd import wire
from repro.osd.commands import OsdCommand
from repro.osd.target import OsdResponse, OsdTarget
from repro.sim.clock import SimClock

__all__ = [
    "ChannelStats",
    "FRAME_PREFIX_BYTES",
    "FrameDecoder",
    "IscsiChannel",
    "frame_pdu",
    "frame_length",
]

_FRAME = struct.Struct(">I")

#: Size of the outer length prefix every framed PDU carries.
FRAME_PREFIX_BYTES = _FRAME.size


def frame_pdu(pdu: bytes, max_bytes: int = wire.MAX_PDU_BYTES) -> bytes:
    """Wrap a PDU for a byte stream: 4-byte big-endian length + PDU."""
    if len(pdu) > max_bytes:
        raise WireError(
            f"refusing to frame a {len(pdu)}-byte PDU (limit {max_bytes})"
        )
    return _FRAME.pack(len(pdu)) + pdu


def frame_length(prefix: bytes, max_bytes: int = wire.MAX_PDU_BYTES) -> int:
    """Validate and decode one frame's length prefix."""
    if len(prefix) < FRAME_PREFIX_BYTES:
        raise WireError("truncated frame: missing length prefix")
    (length,) = _FRAME.unpack_from(prefix)
    if length > max_bytes:
        raise WireError(
            f"declared frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    return length


class FrameDecoder:
    """Incremental stream-to-frame reassembler.

    Feed arbitrary byte chunks in; iterate complete PDUs out. Oversized
    frames raise :class:`~repro.errors.WireError` immediately — as soon as
    the poisoned length prefix arrives, before buffering the body.
    """

    def __init__(self, max_bytes: int = wire.MAX_PDU_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def frames(self) -> Iterator[bytes]:
        """Yield every complete PDU currently buffered."""
        while len(self._buffer) >= FRAME_PREFIX_BYTES:
            length = frame_length(bytes(self._buffer[:FRAME_PREFIX_BYTES]), self.max_bytes)
            end = FRAME_PREFIX_BYTES + length
            if len(self._buffer) < end:
                return
            frame = bytes(self._buffer[FRAME_PREFIX_BYTES:end])
            del self._buffer[:end]
            yield frame


@dataclass
class ChannelStats:
    """Traffic counters for one session.

    ``commands`` counts every submission attempt; ``failures`` the subset
    that died before a response PDU came back (malformed/oversized PDUs,
    target-side exceptions); ``sense_errors`` the subset that completed the
    round trip but reported a non-OK sense code.
    """

    commands: int = 0
    failures: int = 0
    sense_errors: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class IscsiChannel:
    """A simulated initiator→target session carrying PDU traffic."""

    def __init__(
        self,
        target: OsdTarget,
        clock: Optional[SimClock] = None,
        model: ServiceTimeModel = NETWORK_10GBE,
    ) -> None:
        self.target = target
        self.clock = clock or target.array.clock
        self.model = model
        self.busy_until = 0.0
        self.stats = ChannelStats()

    def submit(self, command: OsdCommand) -> OsdResponse:
        """Ship a command PDU, execute it, ship the response PDU back.

        The returned response's ``io.elapsed`` includes both transfer legs
        plus the target-side execution time, so callers see end-to-end
        latency. Failed submissions (wire or target exceptions) are counted
        in :attr:`ChannelStats.failures` before the exception propagates.
        """
        self.stats.commands += 1
        try:
            request_frame = frame_pdu(wire.encode_command(command))
            outbound = self._transfer(len(request_frame), write=True)
            decoded = wire.decode_command(request_frame[FRAME_PREFIX_BYTES:])
            response = decoded.apply(self.target)
            response_frame = frame_pdu(wire.encode_response(response))
            inbound = self._transfer(len(response_frame), write=False)
            result = wire.decode_response(response_frame[FRAME_PREFIX_BYTES:])
        except OsdError:
            self.stats.failures += 1
            raise
        result.io.elapsed += outbound + inbound
        if not result.ok:
            self.stats.sense_errors += 1
        self.stats.bytes_sent += len(request_frame)
        self.stats.bytes_received += len(response_frame)
        return result

    def _transfer(self, num_bytes: int, write: bool) -> float:
        service = (
            self.model.write_time(num_bytes) if write else self.model.read_time(num_bytes)
        )
        start = self.clock.now
        begin = max(start, self.busy_until)
        completion = begin + service
        self.busy_until = completion
        return completion - start

    def __repr__(self) -> str:
        return (
            f"IscsiChannel(commands={self.stats.commands}, "
            f"sent={self.stats.bytes_sent}, received={self.stats.bytes_received})"
        )
