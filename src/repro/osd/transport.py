"""iSCSI-like transport between the OSD initiator and target.

The paper's prototype emulates OSD with "iSCSI protocol coupled with the
current block-based devices" (§II-A): the initiator is the host side of an
iSCSI session, the target the server side. :class:`IscsiChannel` models that
session: commands and responses cross it as *serialized PDUs*
(:mod:`repro.osd.wire`), and the link bills simulated transfer time with a
``busy_until`` queue, so command traffic contends on the wire like data
does.

The channel is optional — `OsdInitiator` works in-process by default, which
is what the experiment calibration uses. Wiring a channel in adds per-command
network latency and an honest serialization boundary.

This module also owns the *stream framing* shared by every transport that
carries PDUs over a byte stream (this simulated channel and the real
sockets in :mod:`repro.net`): each PDU travels as a 4-byte big-endian
length prefix followed by the PDU bytes. The PDU's internal header length
does not bound its data segment, so the outer frame is what lets a stream
receiver know where one PDU ends and the next begins.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.errors import OsdError, WireError
from repro.flash.array import ArrayIoResult
from repro.flash.latency import NETWORK_10GBE, ServiceTimeModel
from repro.osd import wire
from repro.osd.commands import OsdCommand
from repro.osd.target import OsdResponse, OsdTarget
from repro.osd.wire import Buffer
from repro.sim.clock import SimClock

__all__ = [
    "ChannelStats",
    "FRAME_PREFIX_BYTES",
    "FrameDecoder",
    "IscsiChannel",
    "frame_pdu",
    "frame_parts",
    "frame_length",
]

_FRAME = struct.Struct(">I")

#: Size of the outer length prefix every framed PDU carries.
FRAME_PREFIX_BYTES = _FRAME.size


def frame_pdu(pdu: Buffer, max_bytes: int = wire.MAX_PDU_BYTES) -> bytes:
    """Wrap a PDU for a byte stream: 4-byte big-endian length + PDU."""
    if len(pdu) > max_bytes:
        raise WireError(
            f"refusing to frame a {len(pdu)}-byte PDU (limit {max_bytes})"
        )
    return _FRAME.pack(len(pdu)) + bytes(pdu)


def frame_parts(parts: Sequence[Buffer], max_bytes: int = wire.MAX_PDU_BYTES) -> List[Buffer]:
    """Frame a PDU given as segments, without concatenating them.

    The vectored twin of :func:`frame_pdu`: returns ``[prefix, *parts]``
    ready for ``StreamWriter.writelines``, so a large payload segment is
    never copied into a joined frame just to be written.
    """
    total = sum(len(part) for part in parts)
    if total > max_bytes:
        raise WireError(
            f"refusing to frame a {total}-byte PDU (limit {max_bytes})"
        )
    framed: List[Buffer] = [_FRAME.pack(total)]
    framed.extend(part for part in parts if len(part))
    return framed


def frame_length(
    prefix: Buffer, max_bytes: int = wire.MAX_PDU_BYTES, offset: int = 0
) -> int:
    """Validate and decode one frame's length prefix.

    Accepts any buffer-protocol object; ``offset`` lets stream decoders
    read the prefix in place instead of slicing it out first.
    """
    if len(prefix) - offset < FRAME_PREFIX_BYTES:
        raise WireError("truncated frame: missing length prefix")
    (length,) = _FRAME.unpack_from(prefix, offset)
    if length > max_bytes:
        raise WireError(
            f"declared frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    return length


class FrameDecoder:
    """Incremental stream-to-frame reassembler, zero-copy.

    Feed arbitrary byte chunks in; iterate complete PDUs out. Oversized
    frames raise :class:`~repro.errors.WireError` immediately — as soon as
    the poisoned length prefix arrives, before buffering the body.

    **Buffer ownership:** :meth:`frames` yields :class:`memoryview` slices
    over the decoder's internal buffer — no per-frame copy. A yielded view
    is valid only until the next :meth:`feed` or :meth:`frames` call, at
    which point the decoder reclaims the consumed region: every
    previously yielded view is *released*, so stale use raises
    ``ValueError`` instead of silently reading recycled bytes. Consumers
    that need a frame beyond the current batch must ``bytes(frame)`` it.

    **Protocol mode (asyncio port):** the decoder doubles as the receive
    buffer for an :class:`asyncio.BufferedProtocol` — :meth:`get_buffer`
    hands the transport a writable view of the internal buffer's free
    tail and :meth:`buffer_updated` commits the received byte count, so
    the socket ``recv_into``\\ s straight into the decoder with no
    intermediate chunk copy at all. The buffer therefore tracks a
    *capacity* (``len(self._buffer)``) separate from the *valid length*
    (``self._length``): the transport keeps a view over the buffer while
    it delivers ``buffer_updated``, and a :class:`bytearray` with
    exported views may be mutated but never resized — so compaction (a
    same-size move) is safe anywhere, while growth happens only in
    :meth:`get_buffer`/:meth:`feed`, when no transport view is
    outstanding.
    """

    #: Floor on the writable tail handed to transports — the selector
    #: loop passes ``sizehint=-1``, and tiny buffers mean tiny reads.
    MIN_RECV_BYTES = 64 * 1024

    def __init__(self, max_bytes: int = wire.MAX_PDU_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        #: Valid bytes at the front of ``_buffer``; the rest is spare
        #: capacity for :meth:`get_buffer`.
        self._length = 0
        #: Bytes of the valid region already yielded as frames
        #: (compacted lazily).
        self._consumed = 0
        self._exported: List[memoryview] = []

    def _reclaim(self) -> None:
        """Invalidate handed-out views and drop the consumed prefix."""
        for view in self._exported:
            view.release()
        self._exported.clear()
        if self._consumed:
            remaining = self._length - self._consumed
            if remaining:
                # Same-size slice move: compacts without resizing, so it
                # is legal even mid-``buffer_updated``.
                self._buffer[:remaining] = self._buffer[
                    self._consumed : self._length
                ]
            self._length = remaining
            self._consumed = 0

    def feed(self, data: Buffer) -> None:
        self._reclaim()
        need = self._length + len(data)
        if need > len(self._buffer):
            self._buffer += bytes(need - len(self._buffer))
        self._buffer[self._length : need] = data
        self._length = need

    def get_buffer(self, sizehint: int) -> memoryview:
        """Hand the transport a writable view of the buffer's free tail."""
        self._reclaim()
        want = max(sizehint, self.MIN_RECV_BYTES)
        free = len(self._buffer) - self._length
        if free < want:
            self._buffer += bytes(want - free)
        return memoryview(self._buffer)[self._length :]

    def buffer_updated(self, nbytes: int) -> None:
        """Commit ``nbytes`` the transport wrote into the last view."""
        self._length += nbytes

    @property
    def buffered_bytes(self) -> int:
        return self._length - self._consumed

    def frames(self) -> Iterator[memoryview]:
        """Yield every complete PDU currently buffered, as memoryviews."""
        self._reclaim()
        while self._length - self._consumed >= FRAME_PREFIX_BYTES:
            length = frame_length(self._buffer, self.max_bytes, offset=self._consumed)
            start = self._consumed + FRAME_PREFIX_BYTES
            end = start + length
            if self._length < end:
                return
            whole = memoryview(self._buffer)
            frame = whole[start:end]
            # Releasing the parent view leaves the slice valid; only the
            # slice pins the buffer against compaction.
            whole.release()
            self._exported.append(frame)
            self._consumed = end
            yield frame


@dataclass
class ChannelStats:
    """Traffic counters for one session.

    ``commands`` counts every submission attempt; ``failures`` the subset
    that died before a response PDU came back (malformed/oversized PDUs,
    target-side exceptions); ``sense_errors`` the subset that completed the
    round trip but reported a non-OK sense code.
    """

    commands: int = 0
    failures: int = 0
    sense_errors: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class IscsiChannel:
    """A simulated initiator→target session carrying PDU traffic."""

    def __init__(
        self,
        target: OsdTarget,
        clock: Optional[SimClock] = None,
        model: ServiceTimeModel = NETWORK_10GBE,
    ) -> None:
        self.target = target
        self.clock = clock or target.array.clock
        self.model = model
        self.busy_until = 0.0
        self.stats = ChannelStats()

    def submit(self, command: OsdCommand) -> OsdResponse:
        """Ship a command PDU, execute it, ship the response PDU back.

        The returned response's ``io.elapsed`` includes both transfer legs
        plus the target-side execution time, so callers see end-to-end
        latency. Failed submissions (wire or target exceptions) are counted
        in :attr:`ChannelStats.failures` before the exception propagates.

        The *command* still round-trips through real PDU bytes — that is
        the honest serialization boundary. The *response* is encoded once
        to bill its transfer from the true frame length, then returned
        directly instead of being pointlessly decoded back out of the
        bytes the target itself just produced.
        """
        self.stats.commands += 1
        try:
            request_frame = frame_pdu(wire.encode_command(command))
            outbound = self._transfer(len(request_frame), write=True)
            decoded = wire.decode_command(request_frame[FRAME_PREFIX_BYTES:])
            response = decoded.apply(self.target)
            response_frame_bytes = FRAME_PREFIX_BYTES + len(wire.encode_response(response))
            inbound = self._transfer(response_frame_bytes, write=False)
        except OsdError:
            self.stats.failures += 1
            raise
        # Rebuild the io summary with only the fields the wire carries
        # (op/device_io never cross it), so billing the transfer legs
        # neither mutates the target's ArrayIoResult nor leaks host-side
        # detail the encoded response would have dropped.
        result = OsdResponse(
            response.sense,
            io=ArrayIoResult(
                elapsed=response.io.elapsed + outbound + inbound,
                chunks_read=response.io.chunks_read,
                chunks_written=response.io.chunks_written,
                bytes_read=response.io.bytes_read,
                bytes_written=response.io.bytes_written,
                degraded=response.io.degraded,
            ),
            payload=response.payload,
        )
        if not result.ok:
            self.stats.sense_errors += 1
        self.stats.bytes_sent += len(request_frame)
        self.stats.bytes_received += response_frame_bytes
        return result

    def _transfer(self, num_bytes: int, write: bool) -> float:
        service = (
            self.model.write_time(num_bytes) if write else self.model.read_time(num_bytes)
        )
        start = self.clock.now
        begin = max(start, self.busy_until)
        completion = begin + service
        self.busy_until = completion
        return completion - start

    def __repr__(self) -> str:
        return (
            f"IscsiChannel(commands={self.stats.commands}, "
            f"sent={self.stats.bytes_sent}, received={self.stats.bytes_received})"
        )
