"""iSCSI-like transport between the OSD initiator and target.

The paper's prototype emulates OSD with "iSCSI protocol coupled with the
current block-based devices" (§II-A): the initiator is the host side of an
iSCSI session, the target the server side. :class:`IscsiChannel` models that
session: commands and responses cross it as *serialized PDUs*
(:mod:`repro.osd.wire`), and the link bills simulated transfer time with a
``busy_until`` queue, so command traffic contends on the wire like data
does.

The channel is optional — `OsdInitiator` works in-process by default, which
is what the experiment calibration uses. Wiring a channel in adds per-command
network latency and an honest serialization boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flash.latency import NETWORK_10GBE, ServiceTimeModel
from repro.osd import wire
from repro.osd.commands import OsdCommand
from repro.osd.target import OsdResponse, OsdTarget
from repro.sim.clock import SimClock

__all__ = ["ChannelStats", "IscsiChannel"]


@dataclass
class ChannelStats:
    """Traffic counters for one session."""

    commands: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class IscsiChannel:
    """A simulated initiator→target session carrying PDU traffic."""

    def __init__(
        self,
        target: OsdTarget,
        clock: Optional[SimClock] = None,
        model: ServiceTimeModel = NETWORK_10GBE,
    ) -> None:
        self.target = target
        self.clock = clock or target.array.clock
        self.model = model
        self.busy_until = 0.0
        self.stats = ChannelStats()

    def submit(self, command: OsdCommand) -> OsdResponse:
        """Ship a command PDU, execute it, ship the response PDU back.

        The returned response's ``io.elapsed`` includes both transfer legs
        plus the target-side execution time, so callers see end-to-end
        latency.
        """
        request_pdu = wire.encode_command(command)
        outbound = self._transfer(len(request_pdu), write=True)
        decoded = wire.decode_command(request_pdu)
        response = decoded.apply(self.target)
        response_pdu = wire.encode_response(response)
        inbound = self._transfer(len(response_pdu), write=False)
        result = wire.decode_response(response_pdu)
        result.io.elapsed += outbound + inbound
        self.stats.commands += 1
        self.stats.bytes_sent += len(request_pdu)
        self.stats.bytes_received += len(response_pdu)
        return result

    def _transfer(self, num_bytes: int, write: bool) -> float:
        service = (
            self.model.write_time(num_bytes) if write else self.model.read_time(num_bytes)
        )
        start = self.clock.now
        begin = max(start, self.busy_until)
        completion = begin + service
        self.busy_until = completion
        return completion - start

    def __repr__(self) -> str:
        return (
            f"IscsiChannel(commands={self.stats.commands}, "
            f"sent={self.stats.bytes_sent}, received={self.stats.bytes_received})"
        )
