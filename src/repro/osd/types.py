"""Object identifiers and metadata, after the T10 OSD-2 model.

Table I of the paper (itself following OSD-2 and Linux exofs) defines the
object taxonomy reproduced here:

- the **root object** at PID 0x0 / OID 0x0 records global device information;
- **partition objects** have PID >= 0x10000 and OID 0x0;
- **collection** and **user objects** share their partition's PID and have
  OID >= 0x10000;
- exofs reserves OIDs 0x10000-0x10002 of partition 0x10000 for the super
  block, device table, and root directory, and Reo reserves OID 0x10004 of
  the same partition as the control-message object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

__all__ = [
    "CLUSTER_MAP_OBJECT",
    "CONTROL_OBJECT",
    "DEVICE_TABLE",
    "FIRST_USER_OID",
    "ObjectId",
    "ObjectInfo",
    "ObjectKind",
    "PARTITION_BASE",
    "PARTITION_ZERO",
    "ROOT_DIRECTORY",
    "ROOT_OBJECT",
    "SERVICE_STATS_OBJECT",
    "SUPER_BLOCK",
]

#: Lowest PID/OID value for partitions, collections, and user objects.
PARTITION_BASE = 0x10000

#: First OID available for regular user objects (0x10000-0x10004 are
#: reserved by exofs/Reo, 0x10006 by the repro.net service layer, and
#: 0x10007 by the repro.cluster map-exchange endpoint; 0x10005 itself is
#: kept free for examples/tests that predate the extra reservations).
FIRST_USER_OID = 0x10005


class ObjectKind(enum.Enum):
    """The four OSD object types (OSD-2 §4.2, paper Table I)."""

    ROOT = "root"
    PARTITION = "partition"
    COLLECTION = "collection"
    USER = "user"


@dataclass(frozen=True, order=True)
class ObjectId:
    """A (partition id, object id) pair — the unique name of an OSD object."""

    pid: int
    oid: int

    def __post_init__(self) -> None:
        if self.pid < 0 or self.oid < 0:
            raise ValueError("PID and OID must be non-negative")

    def inferred_kind(self) -> ObjectKind:
        """Best-effort kind from the numbering convention alone.

        Collections and user objects are indistinguishable by ID; the target
        records the kind declared at creation. IDs below
        :data:`PARTITION_BASE` (other than the root) are also treated as user
        objects for lenience.
        """
        if self.pid == 0 and self.oid == 0:
            return ObjectKind.ROOT
        if self.oid == 0:
            return ObjectKind.PARTITION
        return ObjectKind.USER

    def __str__(self) -> str:
        return f"{self.pid:#x}/{self.oid:#x}"


#: The root object: global OSD information.
ROOT_OBJECT = ObjectId(0x0, 0x0)
#: The first (and, in exofs, only) partition.
PARTITION_ZERO = ObjectId(PARTITION_BASE, 0x0)
#: exofs super block object.
SUPER_BLOCK = ObjectId(PARTITION_BASE, 0x10000)
#: exofs device table object.
DEVICE_TABLE = ObjectId(PARTITION_BASE, 0x10001)
#: exofs root directory object.
ROOT_DIRECTORY = ObjectId(PARTITION_BASE, 0x10002)
#: Reo's reserved control-message object (paper §IV-C.2).
CONTROL_OBJECT = ObjectId(PARTITION_BASE, 0x10004)
#: The service layer's stats endpoint: a ``#QUERY#`` control write naming
#: this id is answered by the server itself (mirroring OID 0x10004
#: semantics) with a JSON :class:`~repro.net.stats.ServiceStats` payload.
SERVICE_STATS_OBJECT = ObjectId(PARTITION_BASE, 0x10006)
#: The cluster layer's map-exchange endpoint: a ``#QUERY#`` control write
#: naming this id is answered by a shard server with its current
#: epoch-versioned :class:`~repro.cluster.map.ClusterMap` as a JSON payload.
CLUSTER_MAP_OBJECT = ObjectId(PARTITION_BASE, 0x10007)

#: Objects that exist from format time and are Class-0 system metadata.
RESERVED_METADATA = (SUPER_BLOCK, DEVICE_TABLE, ROOT_DIRECTORY)


@dataclass
class ObjectInfo:
    """Target-side record for one stored object."""

    object_id: ObjectId
    kind: ObjectKind
    size: int = 0
    #: Reo class id (0 metadata, 1 dirty, 2 hot clean, 3 cold clean).
    class_id: int = 3
    created_at: float = 0.0
    #: Free-form OSD attributes page (application metadata).
    attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def is_metadata(self) -> bool:
        return self.class_id == 0
