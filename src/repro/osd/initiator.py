"""The OSD initiator: the client side the cache manager runs on (paper §V).

The initiator builds OSD commands and executes them against a target —
either in-process (the default, used by the experiment calibration) or
through an :class:`~repro.osd.transport.IscsiChannel`, which serializes
every command and response to PDU bytes and bills simulated network time,
matching the open-osd/iSCSI split of the paper's prototype.

Crucially for Reo, classification and query messages travel through the
reserved control object exactly as the paper describes: synchronous writes
to OID ``0x10004`` (§IV-C.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.flash.array import ArrayIoResult
from repro.osd import commands
from repro.osd.control import QueryMessage, SetClassMessage
from repro.osd.sense import SenseCode
from repro.osd.target import OsdResponse, OsdTarget
from repro.osd.types import CONTROL_OBJECT, ROOT_OBJECT, ObjectId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.osd.transport import IscsiChannel

__all__ = ["OsdInitiator"]


class OsdInitiator:
    """Client-side handle to one OSD target."""

    def __init__(self, target: OsdTarget, channel: "Optional[IscsiChannel]" = None) -> None:
        """
        Args:
            target: the OSD target to talk to.
            channel: optional transport session; when set, every command
                round-trips through the wire format with network billing.
        """
        self.target = target
        self.channel = channel

    def _execute(self, command: commands.OsdCommand) -> OsdResponse:
        if self.channel is not None:
            return self.channel.submit(command)
        return command.apply(self.target)

    # ------------------------------------------------------------------
    # Object data path
    # ------------------------------------------------------------------
    def write(
        self, object_id: ObjectId, payload: bytes, class_id: Optional[int] = None
    ) -> OsdResponse:
        """Store an object, optionally tagging its class at write time."""
        return self._execute(commands.Write(object_id, payload, class_id))

    def read(self, object_id: ObjectId) -> Tuple[Optional[bytes], OsdResponse]:
        """Read an object; returns ``(payload or None, response)``."""
        response = self._execute(commands.Read(object_id))
        return response.payload, response

    def update(self, object_id: ObjectId, offset: int, data: bytes) -> OsdResponse:
        """Partial in-place write at a byte offset (delta/direct parity)."""
        return self._execute(commands.Update(object_id, offset, data))

    def remove(self, object_id: ObjectId) -> OsdResponse:
        return self._execute(commands.Remove(object_id))

    def exists(self, object_id: ObjectId) -> bool:
        return self.target.exists(object_id)

    # ------------------------------------------------------------------
    # Control messages (paper §IV-C.2)
    # ------------------------------------------------------------------
    def set_class(self, object_id: ObjectId, class_id: int) -> OsdResponse:
        """Send a #SETID# classification command through the control object.

        The write is synchronous (the paper fsyncs it past the buffer cache)
        so the returned sense code reflects the completed reclassification.
        """
        message = SetClassMessage(object_id, class_id)
        return self._execute(commands.Write(CONTROL_OBJECT, message.encode()))

    def query(
        self,
        object_id: ObjectId,
        operation: str = "R",
        offset: int = 0,
        size: int = 0,
    ) -> Tuple[SenseCode, ArrayIoResult]:
        """Send a #QUERY# status probe; returns the sense code."""
        message = QueryMessage(object_id, operation, offset, size)
        response = self._execute(commands.Write(CONTROL_OBJECT, message.encode()))
        return response.sense, response.io

    def recovery_status(self) -> SenseCode:
        """Poll the global recovery state via a root-object #QUERY#.

        Returns 0x65 while recovery runs, 0x66 after it completed, 0x0 when
        none ever ran (paper Table III).
        """
        sense, _ = self.query(ROOT_OBJECT)
        return sense

    def __repr__(self) -> str:
        transport = "iscsi" if self.channel is not None else "local"
        return f"OsdInitiator(target={self.target!r}, transport={transport})"
