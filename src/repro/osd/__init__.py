"""T10-OSD-style object storage substrate.

Models the open-osd split the paper prototypes on (§II-A, §V): an
:class:`~repro.osd.target.OsdTarget` that owns the flash array and executes
object commands, an :class:`~repro.osd.initiator.OsdInitiator` that plays the
client (cache-manager) side, and the reserved *control object*
(OID ``0x10004``) whose writes carry ``#SETID#`` classification and
``#QUERY#`` status messages between the two (§IV-C.2).
"""

from repro.osd.control import QueryMessage, SetClassMessage, parse_control_message
from repro.osd.initiator import OsdInitiator
from repro.osd.sense import SenseCode
from repro.osd.target import OsdTarget
from repro.osd.types import (
    CONTROL_OBJECT,
    DEVICE_TABLE,
    FIRST_USER_OID,
    PARTITION_ZERO,
    ROOT_DIRECTORY,
    ROOT_OBJECT,
    SUPER_BLOCK,
    ObjectId,
    ObjectInfo,
    ObjectKind,
)

__all__ = [
    "CONTROL_OBJECT",
    "DEVICE_TABLE",
    "FIRST_USER_OID",
    "ObjectId",
    "ObjectInfo",
    "ObjectKind",
    "OsdInitiator",
    "OsdTarget",
    "PARTITION_ZERO",
    "QueryMessage",
    "ROOT_DIRECTORY",
    "ROOT_OBJECT",
    "SUPER_BLOCK",
    "SenseCode",
    "SetClassMessage",
    "parse_control_message",
]
