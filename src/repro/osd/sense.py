"""Sense codes returned by the OSD target (paper Table III)."""

from __future__ import annotations

import enum

__all__ = ["SenseCode"]


class SenseCode(enum.IntEnum):
    """Status vocabulary between the object storage and the cache manager.

    Values match the paper's Table III exactly.
    """

    #: The command is successful.
    OK = 0x0
    #: The command is unsuccessful.
    FAIL = -0x1
    #: Data is corrupted.
    DATA_CORRUPTED = 0x63
    #: The cache is full, demanding a cache replacement.
    CACHE_FULL = 0x64
    #: Recovery starts.
    RECOVERY_STARTED = 0x65
    #: Recovery ends.
    RECOVERY_ENDED = 0x66
    #: The allocated space for data redundancy is full.
    REDUNDANCY_FULL = 0x67

    # -- Service-layer extension (repro.net) -------------------------------
    # The paper's Table III stops at 0x67; the networked service tier keeps
    # its error channel in the same vocabulary rather than inventing a second
    # mechanism, so overload and deadline misses surface to initiators as
    # sense data on a healthy connection instead of dropped sockets.

    #: The server is at its in-flight capacity; retry after backoff.
    SERVER_BUSY = 0x68
    #: The server abandoned the command past its service deadline.
    SERVER_TIMEOUT = 0x69
    #: The addressed shard does not own this object under the current
    #: cluster map; the reply carries the shard's map (JSON payload) so the
    #: initiator can refresh its routing and replay. Like ``SERVER_BUSY``,
    #: this code means the command *did not execute*, so re-routing is safe
    #: even for non-idempotent commands.
    WRONG_SHARD = 0x6A

    def describe(self) -> str:
        """The paper's textual description of this code."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    SenseCode.OK: "The command is successful",
    SenseCode.FAIL: "The command is unsuccessful",
    SenseCode.DATA_CORRUPTED: "Data is corrupted",
    SenseCode.CACHE_FULL: "The cache is full",
    SenseCode.RECOVERY_STARTED: "Recovery starts",
    SenseCode.RECOVERY_ENDED: "Recovery ends",
    SenseCode.REDUNDANCY_FULL: "The allocated space for data redundancy is full",
    SenseCode.SERVER_BUSY: "The server is overloaded; retry after backoff",
    SenseCode.SERVER_TIMEOUT: "The server timed out serving the command",
    SenseCode.WRONG_SHARD: "Another shard owns this object under the current cluster map",
}
