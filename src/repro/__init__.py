"""repro — a Python reproduction of *Reo: Enhancing Reliability and
Efficiency of Object-based Flash Caching* (ICDCS 2019).

The package builds the paper's full stack from scratch: Reed-Solomon coding
over GF(256), a simulated flash-SSD array with stripe-level variable
redundancy, a T10-OSD-style object storage target/initiator pair with the
paper's control-message protocol, an LRU write-back object cache manager,
and Reo's two contributions — differentiated data redundancy and
differentiated data recovery — plus the uniform baselines and the MediSyn
workload generator used in the evaluation.

Quickstart::

    from repro import ReoCache, reo_policy

    cache = ReoCache.build(policy=reo_policy(0.20), cache_bytes=64 << 20)
    cache.register_objects({"obj-1": 1 << 20})
    print(cache.read("obj-1").hit)   # False (cold miss)
    print(cache.read("obj-1").hit)   # True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.backend.store import BackendStore
from repro.cache.manager import AccessResult, CacheManager
from repro.cache.stats import CacheStats
from repro.core.classes import ObjectClass, classify
from repro.core.hotness import HotnessTracker
from repro.core.policy import (
    RedundancyPolicy,
    ReoPolicy,
    UniformPolicy,
    full_replication,
    reo_policy,
    uniform_parity,
)
from repro.core.recovery import RecoveryManager
from repro.core.redundancy import RedundancyBudget
from repro.core.reo import ReoCache
from repro.erasure.rs import RSCodec
from repro.flash.array import FlashArray, ObjectHealth
from repro.flash.device import FlashDevice
from repro.flash.stripe import ParityScheme, RedundancyScheme, ReplicationScheme
from repro.osd.initiator import OsdInitiator
from repro.osd.sense import SenseCode
from repro.osd.target import OsdTarget
from repro.sim.clock import SimClock
from repro.sim.metrics import MetricsRecorder, RunMetrics

__version__ = "0.1.0"

__all__ = [
    "AccessResult",
    "BackendStore",
    "CacheManager",
    "CacheStats",
    "FlashArray",
    "FlashDevice",
    "HotnessTracker",
    "MetricsRecorder",
    "ObjectClass",
    "ObjectHealth",
    "OsdInitiator",
    "OsdTarget",
    "ParityScheme",
    "RSCodec",
    "RecoveryManager",
    "RedundancyBudget",
    "RedundancyPolicy",
    "RedundancyScheme",
    "ReoCache",
    "ReoPolicy",
    "ReplicationScheme",
    "RunMetrics",
    "SenseCode",
    "SimClock",
    "UniformPolicy",
    "classify",
    "full_replication",
    "reo_policy",
    "uniform_parity",
]
