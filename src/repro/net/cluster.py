"""Multi-process OSD serving: one target shard per worker process.

One asyncio event loop tops out on a single core; past the protocol-level
wins (zero-copy framing, coalesced writes) the remaining service-layer
ceiling is the GIL. :class:`WorkerPool` scales past it the way Open-CAS
scales per-cache worker queues and PiCN scales ``LayerProcess`` stages:
keep the protocol engine single-threaded *per shard* and run N shards as
separate processes.

Placement model
---------------

Every worker owns a private :class:`~repro.osd.target.OsdTarget` (its own
in-memory flash array — nothing is shared, so no cross-process locking).
Load balancing is **connection-affine**: all workers accept on the same
TCP port, the kernel picks a worker per *connection*, and every command on
that connection executes against that worker's shard. A client therefore
reads its own writes as long as it keeps using the same connection —
exactly the contract the closed-loop load generator and the pooled client
already follow.

:func:`shard_for_object` now lives in :mod:`repro.cluster.placement`
(re-exported here for compatibility): the multi-OSD cluster layer routes
with rendezvous hashing instead, but the worker pool's OID-hash partition
function and its pinned tests stay bit-for-bit.

Accept models
-------------

- **SO_REUSEPORT** (Linux, modern BSDs): every worker binds its own
  listening socket on the shared port; the kernel load-balances incoming
  connections across workers.
- **Sharded accept** (fallback): the parent binds + listens once and the
  workers inherit the socket over ``fork``, all accepting on the same fd.

Workers are forked, not spawned: the target factory may be any callable
(closures included), and the pre-fork listening socket rides along for the
fallback path.
"""

from __future__ import annotations

import multiprocessing
import queue
import socket
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.placement import shard_for_object
from repro.net.stats import merge_snapshots
from repro.osd.target import OsdTarget

__all__ = [
    "WorkerPool",
    "shard_for_object",  # deprecated alias: lives in repro.cluster.placement
    "supports_reuse_port",
]

#: Factory invoked inside each worker process to build that worker's shard.
TargetFactory = Callable[[int], OsdTarget]

_LISTEN_BACKLOG = 128


def supports_reuse_port() -> bool:
    """Whether this platform accepts ``SO_REUSEPORT`` on a TCP socket."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    finally:
        probe.close()
    return True


def _worker_main(
    worker_id: int,
    target_factory: TargetFactory,
    host: str,
    port: int,
    listen_sock: Optional[socket.socket],
    reuse_port: bool,
    max_in_flight: int,
    ready_queue: "multiprocessing.Queue[Tuple[int, int]]",
    stats_queue: "multiprocessing.Queue[Tuple[int, Dict[str, object]]]",
    stop_event: "multiprocessing.synchronize.Event",
) -> None:
    """Child-process entry: serve one shard until the pool says stop."""
    import asyncio

    from repro.net.server import OsdServer

    async def _serve() -> None:
        target = target_factory(worker_id)
        server = OsdServer(
            target,
            host,
            port,
            max_in_flight=max_in_flight,
            reuse_port=reuse_port,
            sock=listen_sock,
        )
        await server.start()
        ready_queue.put((worker_id, server.port))
        # Block a worker thread, not the event loop, on the stop signal.
        await asyncio.get_running_loop().run_in_executor(None, stop_event.wait)
        await server.shutdown()
        stats_queue.put((worker_id, server.stats.snapshot()))

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass


class WorkerPool:
    """N forked OSD worker processes sharing one service port.

    Usage::

        pool = WorkerPool(make_shard, workers=4)
        pool.start()                      # blocks until every worker accepts
        ... drive pool.port with clients ...
        snapshots = pool.shutdown()       # graceful: drain, then collect stats

    ``target_factory(worker_id)`` runs *inside* each worker and builds that
    worker's private shard.
    """

    def __init__(
        self,
        target_factory: TargetFactory,
        workers: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 32,
        start_timeout: float = 15.0,
        stop_timeout: float = 15.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.target_factory = target_factory
        self.workers = workers
        self.host = host
        self.port = port
        self.max_in_flight = max_in_flight
        self.start_timeout = start_timeout
        self.stop_timeout = stop_timeout
        self.reuse_port = supports_reuse_port()
        self._context = multiprocessing.get_context("fork")
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._listen_sock: Optional[socket.socket] = None
        self._stop_event = self._context.Event()
        self._ready_queue = self._context.Queue()
        self._stats_queue = self._context.Queue()
        self._snapshots: Optional[List[Dict[str, object]]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork the workers and wait until all of them are accepting."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
            self.port = sock.getsockname()[1]
            if not self.reuse_port:
                # Sharded accept: the children inherit this listening fd.
                sock.listen(_LISTEN_BACKLOG)
        except BaseException:  # repro: allow[broad-except] rollback, re-raises
            sock.close()
            raise
        self._listen_sock = sock
        child_sock = None if self.reuse_port else sock
        for worker_id in range(self.workers):
            process = self._context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self.target_factory,
                    self.host,
                    self.port,
                    child_sock,
                    self.reuse_port,
                    self.max_in_flight,
                    self._ready_queue,
                    self._stats_queue,
                    self._stop_event,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        ready = 0
        try:
            while ready < self.workers:
                self._ready_queue.get(timeout=self.start_timeout)
                ready += 1
        except queue.Empty:
            self.shutdown()
            raise RuntimeError(
                f"only {ready}/{self.workers} workers came up within "
                f"{self.start_timeout}s"
            ) from None
        if self.reuse_port:
            # Every worker holds its own SO_REUSEPORT socket now; the
            # parent's placeholder only reserved the port during startup.
            sock.close()
            self._listen_sock = None

    def shutdown(self) -> List[Dict[str, object]]:
        """Graceful stop: signal, drain, join; returns per-worker snapshots."""
        if self._snapshots is not None:
            return self._snapshots
        self._stop_event.set()
        snapshots: List[Dict[str, object]] = []
        for _ in self._processes:
            try:
                _worker_id, snapshot = self._stats_queue.get(timeout=self.stop_timeout)
                snapshots.append(snapshot)
            except queue.Empty:
                break  # worker died or hung; join/terminate below
        for process in self._processes:
            process.join(timeout=self.stop_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        self._snapshots = snapshots
        return snapshots

    def merged_stats(self) -> Dict[str, object]:
        """Cross-worker ServiceStats aggregate (see ``merge_snapshots``)."""
        return merge_snapshots(self.shutdown())

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.shutdown()
