"""repro.net — the networked OSD service layer.

The paper's prototype serves its object cache over a real network path
(kernel iSCSI initiator → user-level OSD target, §II-A/§IV-B). This package
is the reproduction's equivalent of that serving tier: an asyncio TCP
server hosting an :class:`~repro.osd.target.OsdTarget` and speaking the
length-prefixed PDU format of :mod:`repro.osd.wire` over real sockets, plus
an async initiator client with a connection pool, request pipelining,
per-request timeouts, and retry with exponential backoff for idempotent
commands.

Modules:

- :mod:`repro.net.server` — the asyncio OSD server (``python -m
  repro.net.server`` runs one; ``--workers N`` forks a sharded pool).
- :mod:`repro.net.client` — the pooled, pipelined async initiator.
- :mod:`repro.net.flush` — per-connection outbound write coalescing.
- :mod:`repro.net.cluster` — the multi-process worker pool (one target
  shard per worker, SO_REUSEPORT or sharded accept).
- :mod:`repro.net.retry` — retry/backoff policy and idempotency rules.
- :mod:`repro.net.stats` — service counters and latency percentiles.
- :mod:`repro.net.loadgen` — closed-loop multi-client load generator.
"""

from repro.net.client import AsyncOsdClient, ClientStats, OsdServiceError
from repro.net.cluster import WorkerPool, shard_for_object, supports_reuse_port
from repro.net.flush import StreamFlusher
from repro.net.retry import RetryPolicy, is_idempotent
from repro.net.server import OsdServer
from repro.net.stats import LatencyReservoir, ServiceStats, merge_snapshots

__all__ = [
    "AsyncOsdClient",
    "ClientStats",
    "LatencyReservoir",
    "OsdServer",
    "OsdServiceError",
    "RetryPolicy",
    "ServiceStats",
    "StreamFlusher",
    "WorkerPool",
    "is_idempotent",
    "merge_snapshots",
    "shard_for_object",
    "supports_reuse_port",
]
