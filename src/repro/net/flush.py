"""Outbound write coalescing for one stream connection.

The seed service layer paid one ``writer.write`` + one ``await
writer.drain()`` per PDU — at 4 KiB payloads that makes syscall and
event-loop overhead, not data movement, the throughput ceiling.
:class:`StreamFlusher` batches instead: producers enqueue framed PDUs as
buffer *segments* (no concatenation), and a single flusher task per
connection ships everything accumulated since its last wakeup with one
``writelines`` and one ``drain`` per batch.

Coalescing falls out of the event loop's own scheduling: the first
``send`` of a tick schedules a flush callback with ``call_soon``, which
runs once the current callbacks finish — so every response produced in
the same event-loop tick shares one ``writelines`` syscall. The flush
callback is synchronous (no task wakeup per batch); draining is deferred
to a standby task that only runs when the transport's own write buffer
exceeds the high-water mark, because ``drain`` on an unpressured
transport is a no-op not worth a task switch.

Memory stays bounded by a high-water mark: once the outbox exceeds it,
``send`` pushes the buffered segments into the transport immediately
(still without draining per send), so backpressure is delegated to the
transport's own write buffer and the standby drain task.

The flusher accepts two kinds of sink. A :class:`asyncio.StreamWriter`
(anything with a ``drain`` coroutine) is *writer mode*, where the standby
task awaits ``writer.drain()``. A bare :class:`asyncio.Transport`
(``Protocol`` port) is *transport mode*: there is no ``drain()``
coroutine in the protocol world — the transport signals back-pressure by
calling ``pause_writing``/``resume_writing`` on its protocol, and the
owning protocol forwards those to :meth:`pause_writing`/
:meth:`resume_writing` here. The standby drain task then awaits the
resume event instead of ``drain()``: same semantics (block until the
write buffer empties below the low-water mark), no stream wrapper.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Sequence

from repro.osd.wire import Buffer

__all__ = ["StreamFlusher"]

#: Default outbox bound before segments are pushed to the transport early.
DEFAULT_HIGH_WATER_BYTES = 256 * 1024


class StreamFlusher:
    """Coalesces many outbound frames into one ``writelines`` + ``drain``.

    Args:
        writer: the connection's :class:`asyncio.StreamWriter`, or a bare
            :class:`asyncio.Transport` (transport mode — anything without
            a ``drain`` coroutine).
        high_water_bytes: outbox size that triggers an early (undrained)
            push into the transport; also the transport write-buffer size
            past which the standby drain task is woken.
        on_error: called once if the flusher's drain hits a dead socket;
            the owner severs the connection.
        on_flush: called after every completed batch (stats hooks).
    """

    def __init__(
        self,
        writer,
        *,
        high_water_bytes: int = DEFAULT_HIGH_WATER_BYTES,
        on_error: Optional[Callable[[], None]] = None,
        on_flush: Optional[Callable[[], None]] = None,
    ) -> None:
        self.writer = writer
        #: Writer mode awaits ``writer.drain()``; transport mode awaits
        #: the ``resume_writing`` signal forwarded by the owning protocol.
        self._writer_mode = hasattr(writer, "drain")
        self.high_water_bytes = high_water_bytes
        self.on_error = on_error
        self.on_flush = on_flush
        #: Completed batches (one writelines + one drain each).
        self.flushes = 0
        #: Frames accepted via :meth:`send`.
        self.sends = 0
        self._outbox: List[Buffer] = []
        self._outbox_bytes = 0
        self._flush_scheduled = False
        self._loop = asyncio.get_event_loop()
        self._wakeup = asyncio.Event()
        self._resumed = asyncio.Event()
        self._resumed.set()
        self._closed = False
        self._task = asyncio.ensure_future(self._run())

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def paused(self) -> bool:
        """True while the transport holds the connection in back-pressure."""
        return not self._resumed.is_set()

    def pause_writing(self) -> None:
        """Transport mode: the write buffer crossed its high-water mark.

        Forwarded by the owning protocol's ``pause_writing``. Wakes the
        standby drain task, which parks on the resume event — the
        protocol-world equivalent of an in-flight ``drain()``.
        """
        self._resumed.clear()
        self._wakeup.set()

    def resume_writing(self) -> None:
        """Transport mode: the write buffer emptied below low-water."""
        self._resumed.set()

    def send(self, parts: Sequence[Buffer]) -> None:
        """Enqueue one framed PDU (as segments) for the next batch."""
        if self._closed or self.writer.is_closing():
            return
        self.sends += 1
        self._outbox.extend(parts)
        for part in parts:
            self._outbox_bytes += len(part)
        if self._outbox_bytes >= self.high_water_bytes:
            self._push()
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush_batch)

    def _push(self) -> None:
        """Move the outbox into the transport's write buffer (no drain)."""
        buffers, self._outbox = self._outbox, []
        self._outbox_bytes = 0
        if buffers and not self.writer.is_closing():
            self.writer.writelines(buffers)

    def _flush_batch(self) -> None:
        """End-of-tick flush: one ``writelines`` for the whole batch.

        Runs as a plain callback, not a task — nothing here awaits. The
        standby drain task is only woken when the transport reports real
        back-pressure, so the steady-state batch costs one syscall and
        zero task switches.
        """
        self._flush_scheduled = False
        if self._closed:
            return
        self._push()
        self.flushes += 1
        if self.on_flush is not None:
            self.on_flush()
        if self._write_buffer_size() > self.high_water_bytes:
            self._wakeup.set()

    def _write_buffer_size(self) -> int:
        transport = self.writer.transport if self._writer_mode else self.writer
        if transport is None:
            return 0
        return transport.get_write_buffer_size()

    async def _drain(self) -> None:
        """One back-pressure wait, in whichever dialect the sink speaks."""
        if self._writer_mode:
            await self.writer.drain()  # repro: allow[async-blocking]
        else:
            await self._resumed.wait()

    async def _run(self) -> None:
        """Standby drain task: applies back-pressure only when asked."""
        try:
            while not self._closed:
                await self._wakeup.wait()
                self._wakeup.clear()
                if self._closed:
                    break
                # The sanctioned drain: one per pressured batch, covering
                # every send since the transport last emptied.
                await self._drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            self._closed = True
            if self.on_error is not None:
                self.on_error()

    def abort(self) -> None:
        """Synchronous teardown: push what's queued, stop the task."""
        if not self._closed:
            self._closed = True
            self._push()
        # Unblock any transport-mode drain waiter: a closed transport
        # flushes (or drops) its own buffer; nobody resumes a dead one.
        self._resumed.set()
        self._task.cancel()

    async def aclose(self) -> None:
        """Flush the outbox best-effort, then stop the flusher task."""
        self.abort()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            return
        if not self.writer.is_closing():
            try:
                await self._drain()
            except (ConnectionError, OSError):
                pass
