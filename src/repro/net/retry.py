"""Retry policy for the async initiator: exponential backoff with jitter.

Only *idempotent* commands are retried. Re-sending a command whose first
attempt may have already executed is safe exactly when executing it twice
leaves the target in the same state and returns the same answer:

- ``Read``/``GetAttr``/``ListPartition`` never mutate anything;
- ``Write`` is a whole-object overwrite, ``Update`` rewrites the same byte
  range with the same bytes, ``SetAttr`` stores the same value — replaying
  any of them converges to the identical state;
- ``CreatePartition``/``CreateObject``/``Remove`` are NOT idempotent: a
  replay after a success that the client never saw answers ``FAIL``
  (already exists / already gone), which would surface a phantom error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.osd import commands

__all__ = ["IDEMPOTENT_COMMANDS", "RetryPolicy", "is_idempotent"]

IDEMPOTENT_COMMANDS = (
    commands.Read,
    commands.Write,
    commands.Update,
    commands.SetAttr,
    commands.GetAttr,
    commands.ListPartition,
)


def is_idempotent(command: commands.OsdCommand) -> bool:
    """True when re-sending ``command`` after an ambiguous failure is safe."""
    return isinstance(command, IDEMPOTENT_COMMANDS)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Attempt ``n`` (0-based) sleeps ``min(max_delay, base_delay *
    multiplier**n)`` scaled by a uniform jitter in ``[1 - jitter, 1]`` —
    jitter spreads synchronized retry storms from many clients hitting one
    overloaded server.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delays(self) -> Iterator[float]:
        """Backoff delays between attempts (``max_attempts - 1`` of them)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
            yield delay * (1.0 - self.jitter * rng.random())


#: Retry disabled: one attempt, surface the first failure.
NO_RETRY = RetryPolicy(max_attempts=1)
