"""Service-side counters and latency percentiles for the OSD server.

The server aggregates these and answers ``#QUERY#`` control writes naming
:data:`~repro.osd.types.SERVICE_STATS_OBJECT` with a JSON snapshot —
mirroring the paper's OID 0x10004 control-object semantics, but answered by
the service layer itself rather than the target.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class LatencyReservoir:
    """Bounded sample of recent service times for percentile estimates.

    Keeps the last ``capacity`` observations (a sliding window rather than a
    decaying reservoir: the stats endpoint is about *current* service
    quality, and a window of a few thousand commands smooths noise without
    remembering cold-start latencies forever).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._window: List[float] = []
        self._cursor = 0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if len(self._window) < self.capacity:
            self._window.append(seconds)
        else:
            self._window[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self.capacity

    def percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` (0..1) of the current window; 0 if empty."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class ServiceStats:
    """Aggregate counters for one server's lifetime."""

    connections_total: int = 0
    connections_active: int = 0
    in_flight: int = 0
    max_in_flight: int = 0
    commands: int = 0
    sense_errors: int = 0
    wire_errors: int = 0
    busy_rejections: int = 0
    timeouts: int = 0
    retries_seen: int = 0
    #: Coalesced write batches shipped (one writelines + one drain each);
    #: ``commands / flushes`` is the realized coalescing factor.
    flushes: int = 0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    def begin_command(self) -> None:
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)

    def end_command(self, seconds: float, ok: bool) -> None:
        self.in_flight -= 1
        self.commands += 1
        if not ok:
            self.sense_errors += 1
        self.latency.record(seconds)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view served by the stats endpoint."""
        return {
            "connections_total": self.connections_total,
            "connections_active": self.connections_active,
            "in_flight": self.in_flight,
            "max_in_flight": self.max_in_flight,
            "commands": self.commands,
            "sense_errors": self.sense_errors,
            "wire_errors": self.wire_errors,
            "busy_rejections": self.busy_rejections,
            "timeouts": self.timeouts,
            "retries_seen": self.retries_seen,
            "flushes": self.flushes,
            "latency": {
                "count": self.latency.count,
                "mean_ms": self.latency.mean * 1e3,
                "p50_ms": self.latency.percentile(0.50) * 1e3,
                "p99_ms": self.latency.percentile(0.99) * 1e3,
            },
        }

    def to_json(self) -> bytes:
        return json.dumps(self.snapshot(), sort_keys=True).encode("ascii")


def parse_stats_payload(payload: Optional[bytes]) -> Dict[str, object]:
    """Decode a stats-endpoint response payload."""
    if not payload:
        raise ValueError("empty stats payload")
    return json.loads(payload.decode("ascii"))


#: Snapshot counters summed across workers by :func:`merge_snapshots`.
_ADDITIVE_KEYS = (
    "connections_total",
    "connections_active",
    "in_flight",
    "max_in_flight",
    "commands",
    "sense_errors",
    "wire_errors",
    "busy_rejections",
    "timeouts",
    "retries_seen",
    "flushes",
)


def merge_snapshots(
    snapshots: List[Dict[str, object]], key: str = "workers"
) -> Dict[str, object]:
    """Aggregate per-worker :meth:`ServiceStats.snapshot` dicts.

    Counters sum (``max_in_flight`` sums too: the shards run concurrently,
    so their peak depths add). Latency merges from summaries, which is the
    best a snapshot allows: counts and means combine exactly
    (count-weighted); p50/p99 take the worst worker's value — a
    conservative bound rather than a true pooled percentile.

    ``key`` labels the member count in the merged dict: ``"workers"`` for
    the worker-pool merge, ``"shards"`` for the cluster-wide merge.
    """
    totals: Dict[str, int] = {counter: 0 for counter in _ADDITIVE_KEYS}
    count = 0
    weighted_mean = 0.0
    p50 = 0.0
    p99 = 0.0
    for snapshot in snapshots:
        for counter in _ADDITIVE_KEYS:
            value = snapshot.get(counter, 0)
            totals[counter] += value if isinstance(value, int) else 0
        latency = snapshot.get("latency")
        if isinstance(latency, dict):
            n = int(latency.get("count", 0))
            count += n
            weighted_mean += float(latency.get("mean_ms", 0.0)) * n
            p50 = max(p50, float(latency.get("p50_ms", 0.0)))
            p99 = max(p99, float(latency.get("p99_ms", 0.0)))
    merged: Dict[str, object] = dict(totals)
    merged[key] = len(snapshots)
    merged["latency"] = {
        "count": count,
        "mean_ms": weighted_mean / count if count else 0.0,
        "p50_ms": p50,
        "p99_ms": p99,
    }
    return merged
