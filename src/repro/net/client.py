"""The async OSD initiator: pooled, pipelined, timeout- and retry-aware.

:class:`AsyncOsdClient` is the socket-side counterpart of
:class:`~repro.osd.initiator.OsdInitiator`: the same command surface (write
/ read / update / remove / control messages), but executed against a
:class:`~repro.net.server.OsdServer` over TCP.

Reliability model:

- **Connection pool** — ``pool_size`` sockets, round-robin dispatch,
  transparent reconnect of dead connections on the next request.
- **Pipelining** — each connection keeps an in-flight table keyed by the
  PDU sequence id, so many requests overlap on one socket and responses
  may return out of order.
- **Timeouts** — every request carries a deadline; a late response is
  abandoned (and ignored if it eventually arrives).
- **Retry** — idempotent commands (see :mod:`repro.net.retry`) are retried
  with exponential backoff + jitter after timeouts, connection failures,
  and ``SERVER_TIMEOUT`` sense data. ``SERVER_BUSY`` means the server
  *did not execute* the command, so busy replies are retried for every
  command type. Non-idempotent commands surface the failure instead —
  replaying them could turn an executed-but-unacknowledged success into a
  phantom error.
- **Coalescing** — symmetric with the server: requests are enqueued on a
  per-connection :class:`~repro.net.flush.StreamFlusher` as un-copied
  ``[frame prefix, header, payload]`` segments, so pipelined commands
  issued in the same event-loop tick share one ``writelines`` and one
  ``drain``; responses land straight in the zero-copy
  :class:`~repro.osd.transport.FrameDecoder` via the
  :class:`asyncio.BufferedProtocol` receive path (no StreamReader
  double-buffer, no reader task).
- **Wire version** — requests are encoded at ``wire_version``
  (:data:`~repro.osd.wire.WIRE_V2` binary headers by default; pass
  ``wire_version=wire.WIRE_V1`` to speak JSON headers to an old server).
  The first PDU on each connection advertises the version; responses are
  auto-detected per PDU, so either way the client interoperates with
  servers of both generations.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OsdError, WireError
from repro.flash.array import ArrayIoResult
from repro.net.flush import StreamFlusher
from repro.net.retry import RetryPolicy, is_idempotent
from repro.net.stats import parse_stats_payload
from repro.osd import commands, wire
from repro.osd.control import QueryMessage, SetClassMessage
from repro.osd.sense import SenseCode
from repro.osd.target import OsdResponse
from repro.osd.transport import FrameDecoder, frame_parts
from repro.osd.types import CONTROL_OBJECT, ObjectId, ROOT_OBJECT

__all__ = ["AsyncOsdClient", "ClientStats", "OsdServiceError"]

#: Sense codes the client deliberately surfaces to callers instead of
#: branching on (audited by the ``sense-exhaustive`` analysis rule):
#: the recovery pair is the payload of :meth:`AsyncOsdClient.recovery_status`
#: — the caller polls until STARTED becomes ENDED — and the two
#: space-pressure codes are write-admission outcomes the cache manager
#: turns into eviction/placement decisions at the call site.
SENSE_HANDLED_BY_DEFAULT = (
    SenseCode.RECOVERY_STARTED,
    SenseCode.RECOVERY_ENDED,
    SenseCode.CACHE_FULL,
    SenseCode.REDUNDANCY_FULL,
)

#: Read-side chunk size: one ``await`` can pull many pipelined responses.
RECV_CHUNK_BYTES = 256 * 1024


class OsdServiceError(OsdError):
    """A command could not be completed within the client's retry budget."""


class _ConnectionLostError(OsdServiceError):
    """The socket died while requests were in flight (internal, retryable)."""


@dataclass
class ClientStats:
    """Client-side reliability counters."""

    requests: int = 0
    retries: int = 0
    timeouts: int = 0
    connection_errors: int = 0
    busy_replies: int = 0
    server_timeouts: int = 0
    exhausted: int = 0
    deadline_exhausted: int = 0


class _Connection(asyncio.BufferedProtocol):
    """One pooled socket with a pipelined in-flight table.

    A :class:`asyncio.BufferedProtocol`: the transport ``recv_into``\\ s
    straight into the frame decoder's buffer, and responses resolve their
    pending futures synchronously in ``buffer_updated`` — no reader task,
    no per-chunk copy. Transport back-pressure parks the flusher's
    standby drain via ``pause_writing``/``resume_writing``.
    """

    def __init__(self, max_pdu_bytes: int, wire_version: int) -> None:
        self.max_pdu_bytes = max_pdu_bytes
        self.wire_version = wire_version
        self.decoder = FrameDecoder(max_pdu_bytes)
        self.pending: Dict[int, asyncio.Future] = {}
        self.closed = False
        self.transport: Optional[asyncio.Transport] = None
        self.flusher: Optional[StreamFlusher] = None
        self._lost = asyncio.Event()

    # ------------------------------------------------------------------
    # asyncio.BufferedProtocol interface
    # ------------------------------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        assert isinstance(transport, asyncio.Transport)
        sock = transport.get_extra_info("socket")
        if sock is not None:
            # Request/response traffic: never sit in Nagle's buffer.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.transport = transport
        self.flusher = StreamFlusher(transport, on_error=self._fail_pending)

    def get_buffer(self, sizehint: int) -> memoryview:
        return self.decoder.get_buffer(max(sizehint, RECV_CHUNK_BYTES))

    def buffer_updated(self, nbytes: int) -> None:
        self.decoder.buffer_updated(nbytes)
        try:
            for pdu in self.decoder.frames():
                seq, response = wire.decode_response_pdu(pdu)
                future = self.pending.pop(seq, None) if seq is not None else None
                if future is not None and not future.done():
                    future.set_result(response)
                # else: a response we stopped waiting for (late after a
                # timeout) or an unsolicited error reply — drop it.
        except WireError:
            self._fail_pending()

    def eof_received(self) -> bool:
        self._fail_pending()
        return False

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self._fail_pending()
        self._lost.set()

    def pause_writing(self) -> None:
        if self.flusher is not None:
            self.flusher.pause_writing()

    def resume_writing(self) -> None:
        if self.flusher is not None:
            self.flusher.resume_writing()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _fail_pending(self) -> None:
        self.closed = True
        if self.flusher is not None:
            self.flusher.abort()
        for future in self.pending.values():
            if not future.done():
                future.set_exception(
                    _ConnectionLostError("connection lost with requests in flight")
                )
        self.pending.clear()
        if self.transport is not None and not self.transport.is_closing():
            self.transport.close()

    async def request(
        self,
        command: commands.OsdCommand,
        seq: int,
        retry: int,
        timeout: Optional[float] = None,
    ) -> OsdResponse:
        if self.closed or self.transport is None or self.transport.is_closing():
            raise _ConnectionLostError("connection already closed")
        # Encode before registering: a WireError (e.g. oversized PDU) must
        # surface to the caller, not strand a pending future.
        parts = frame_parts(
            wire.encode_command_parts(
                command, seq=seq, retry=retry, version=self.wire_version
            ),
            max_bytes=self.max_pdu_bytes,
        )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.pending[seq] = future
        # Deadline as a plain timer on the future instead of wait_for's
        # wrapper task: one heap entry per request, no extra task switch.
        handle = (
            loop.call_later(timeout, self._expire, seq)
            if timeout is not None
            else None
        )
        try:
            # Coalesced send: the flusher batches this with every other
            # request enqueued this tick. Socket failures surface through
            # the reader/flusher failing the pending futures.
            self.flusher.send(parts)
            return await future
        finally:
            if handle is not None:
                handle.cancel()
            self.pending.pop(seq, None)

    def _expire(self, seq: int) -> None:
        """Deadline fired: abandon the request (a late reply is dropped)."""
        future = self.pending.pop(seq, None)
        if future is not None and not future.done():
            future.set_exception(asyncio.TimeoutError())

    async def close(self) -> None:
        self.closed = True
        if self.flusher is not None:
            await self.flusher.aclose()
        if self.transport is not None:
            if not self.transport.is_closing():
                self.transport.close()
            # The transport flushes its write buffer before the FIN;
            # connection_lost marks the lost event once it is truly down.
            await self._lost.wait()


class AsyncOsdClient:
    """Client-side handle to one networked OSD server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 4,
        timeout: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        max_pdu_bytes: int = wire.MAX_PDU_BYTES,
        wire_version: int = wire.WIRE_V2,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if wire_version not in (wire.WIRE_V1, wire.WIRE_V2):
            raise ValueError(f"unsupported wire version {wire_version!r}")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.max_pdu_bytes = max_pdu_bytes
        self.wire_version = wire_version
        self.stats = ClientStats()
        self._pool: List[Optional[_Connection]] = [None] * pool_size
        self._dispatch = itertools.count()
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    async def connect(self) -> None:
        """Open the whole pool eagerly (optional; submit reconnects lazily)."""
        for slot in range(self.pool_size):
            await self._connection(slot)

    async def _connection(self, slot: int) -> _Connection:
        conn = self._pool[slot]
        if conn is None or conn.closed:
            loop = asyncio.get_running_loop()
            _transport, conn = await loop.create_connection(
                lambda: _Connection(self.max_pdu_bytes, self.wire_version),
                self.host,
                self.port,
            )
            self._pool[slot] = conn
        return conn

    async def aclose(self) -> None:
        for conn in self._pool:
            if conn is not None:
                await conn.close()
        self._pool = [None] * self.pool_size

    async def __aenter__(self) -> "AsyncOsdClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Core submission path
    # ------------------------------------------------------------------
    async def submit(
        self,
        command: commands.OsdCommand,
        timeout: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
    ) -> OsdResponse:
        """Execute one command with pipelining, timeout, and retry.

        ``timeout`` bounds each *attempt*; ``deadline`` (an absolute
        ``loop.time()`` instant) bounds the whole call — backoff sleeps and
        retry attempts together can never overrun it. Attempt timeouts are
        clipped to the remaining budget, and a retry whose backoff would
        land past the deadline is abandoned instead of slept.
        """
        self.stats.requests += 1
        timeout = self.timeout if timeout is None else timeout
        loop = asyncio.get_running_loop() if deadline is not None else None
        delays: Optional[List[float]] = None  # built on first retry only
        attempts = self.retry.max_attempts
        failure: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                if delays is None:
                    delays = list(self.retry.delays())
                delay = delays[attempt - 1]
                if loop is not None and loop.time() + delay >= deadline:
                    self.stats.deadline_exhausted += 1
                    break  # the backoff alone would blow the budget
                self.stats.retries += 1
                await asyncio.sleep(delay)
            attempt_timeout = timeout
            if loop is not None:
                remaining = deadline - loop.time()
                if remaining <= 0.0:
                    self.stats.deadline_exhausted += 1
                    break
                attempt_timeout = min(timeout, remaining)
            try:
                response = await self._attempt(command, attempt, attempt_timeout)
            except asyncio.TimeoutError as exc:
                self.stats.timeouts += 1
                failure = OsdServiceError(
                    f"command timed out after {timeout}s: {command!r}"
                )
                failure.__cause__ = exc
                if not is_idempotent(command):
                    break
                continue
            except (_ConnectionLostError, ConnectionError, OSError) as exc:
                self.stats.connection_errors += 1
                failure = OsdServiceError(f"connection failed: {exc}")
                failure.__cause__ = exc
                if not is_idempotent(command):
                    break
                continue
            if response.sense is SenseCode.SERVER_BUSY:
                # The server refused without executing: always retryable.
                self.stats.busy_replies += 1
                failure = OsdServiceError("server busy after all retries")
                continue
            if response.sense is SenseCode.SERVER_TIMEOUT:
                self.stats.server_timeouts += 1
                failure = OsdServiceError("server timed out serving the command")
                if not is_idempotent(command):
                    break
                continue
            return response
        self.stats.exhausted += 1
        if failure is None:
            # The deadline expired before the first attempt could even run.
            raise OsdServiceError(
                f"operation deadline exhausted before completion: {command!r}"
            )
        raise failure

    async def _attempt(
        self, command: commands.OsdCommand, attempt: int, timeout: float
    ) -> OsdResponse:
        slot = next(self._dispatch) % self.pool_size
        conn = await self._connection(slot)
        seq = next(self._seq)
        return await conn.request(command, seq, retry=attempt, timeout=timeout)

    # ------------------------------------------------------------------
    # Initiator-style command surface
    # ------------------------------------------------------------------
    async def create_partition(self, pid: int) -> OsdResponse:
        return await self.submit(commands.CreatePartition(pid))

    async def write(
        self, object_id: ObjectId, payload: bytes, class_id: Optional[int] = None
    ) -> OsdResponse:
        return await self.submit(commands.Write(object_id, payload, class_id))

    async def read(self, object_id: ObjectId) -> Tuple[Optional[bytes], OsdResponse]:
        response = await self.submit(commands.Read(object_id))
        return response.payload, response

    async def update(self, object_id: ObjectId, offset: int, data: bytes) -> OsdResponse:
        return await self.submit(commands.Update(object_id, offset, data))

    async def remove(self, object_id: ObjectId) -> OsdResponse:
        return await self.submit(commands.Remove(object_id))

    async def get_attr(
        self, object_id: ObjectId, key: str
    ) -> Tuple[Optional[str], OsdResponse]:
        """Fetch one attribute-page entry; ``(None, response)`` on FAIL."""
        response = await self.submit(commands.GetAttr(object_id, key))
        if not response.ok or response.payload is None:
            return None, response
        return response.payload.decode("utf-8"), response

    async def list_partition(self, pid: int) -> Tuple[List[ObjectId], OsdResponse]:
        """Member object ids of one partition; ``([], response)`` on FAIL."""
        response = await self.submit(commands.ListPartition(pid))
        if not response.ok or not response.payload:
            return [], response
        members = []
        for line in response.payload.decode("ascii").splitlines():
            pid_text, _, oid_text = line.partition("/")
            members.append(ObjectId(int(pid_text, 16), int(oid_text, 16)))
        return members, response

    async def set_class(self, object_id: ObjectId, class_id: int) -> OsdResponse:
        message = SetClassMessage(object_id, class_id)
        return await self.submit(commands.Write(CONTROL_OBJECT, message.encode()))

    async def query(
        self,
        object_id: ObjectId,
        operation: str = "R",
        offset: int = 0,
        size: int = 0,
    ) -> Tuple[SenseCode, ArrayIoResult]:
        message = QueryMessage(object_id, operation, offset, size)
        response = await self.submit(commands.Write(CONTROL_OBJECT, message.encode()))
        return response.sense, response.io

    async def recovery_status(self) -> SenseCode:
        sense, _ = await self.query(ROOT_OBJECT)
        return sense

    async def service_stats(self) -> Dict[str, object]:
        """Fetch the server's ServiceStats snapshot via the stats endpoint."""
        from repro.osd.types import SERVICE_STATS_OBJECT

        message = QueryMessage(SERVICE_STATS_OBJECT, "R")
        response = await self.submit(commands.Write(CONTROL_OBJECT, message.encode()))
        if not response.ok:
            raise OsdServiceError(f"stats query failed with sense {response.sense!r}")
        return parse_stats_payload(response.payload)

    def __repr__(self) -> str:
        open_count = sum(1 for c in self._pool if c is not None and not c.closed)
        return (
            f"AsyncOsdClient({self.host}:{self.port}, pool={open_count}/"
            f"{self.pool_size}, requests={self.stats.requests})"
        )
