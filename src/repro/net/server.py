"""The asyncio OSD server: a real-socket serving tier for one target.

``python -m repro.net.server`` starts one on localhost against a fresh
in-memory flash array; library users embed :class:`OsdServer` directly.

Protocol: each TCP connection carries framed PDUs
(:func:`repro.osd.transport.frame_pdu`): a 4-byte length prefix, then a
command PDU (:mod:`repro.osd.wire`). Requests carry a ``seq`` id; the
response echoes it, so a connection is fully pipelined — many commands in
flight, responses in completion order.

Robustness model:

- **Size guards** — the frame length prefix is validated before the body is
  buffered; oversized or unparseable frames kill the connection (the byte
  stream is unsynchronized). A malformed PDU *inside* a valid frame gets a
  structured ``FAIL`` reply and the connection lives on.
- **Backpressure** — a per-connection semaphore bounds in-flight commands;
  when full, the server simply stops reading that socket, pushing back
  through TCP. An optional global cap answers ``SERVER_BUSY`` sense data
  instead of executing, so overload is visible to clients as a retryable
  status, not a dropped connection.
- **Graceful shutdown** — stop accepting, drain in-flight commands up to a
  deadline, then close connections.
- **Stats endpoint** — a ``#QUERY#`` control write naming
  :data:`~repro.osd.types.SERVICE_STATS_OBJECT` is answered by the server
  with a JSON :class:`~repro.net.stats.ServiceStats` snapshot (connections,
  in-flight depth, retries seen, timeouts, p50/p99 service latency).

Throughput model (zero-copy + coalescing PR): the read side pulls large
chunks into a zero-copy :class:`~repro.osd.transport.FrameDecoder` (PDUs
are memoryview slices of the receive buffer; the data segment is copied
exactly once, into the command payload), and the write side batches — every
response is enqueued on a per-connection :class:`~repro.net.flush.StreamFlusher`
as ``[frame prefix, header, payload]`` segments and shipped with one
``writelines`` + one ``drain`` per event-loop tick instead of one drain per
command. ``--workers N`` (see :mod:`repro.net.cluster`) scales past the
GIL with one target shard per worker process.

Protocol port (wire v2 PR): each connection is an
:class:`asyncio.BufferedProtocol` — the socket ``recv_into``\\ s straight
into the :class:`~repro.osd.transport.FrameDecoder`'s buffer (no
StreamReader double-buffer, no reader-task wakeup per chunk) and frames
are served synchronously from ``buffer_updated``. Back-pressure is
symmetric: the connection's in-flight bound and the transport's
``pause_writing`` both gate ``pause_reading``/``resume_reading``, and the
flusher's standby drain parks on the transport's resume signal. The
server also negotiates the wire format per connection: it starts in v1
(JSON headers) and sticks to v2 binary headers from the first v2 command
it decodes, so v1 and v2 clients share one port.
"""

from __future__ import annotations

import asyncio
import socket
import time
from collections import deque
from typing import Awaitable, Callable, Deque, Optional, Set, Tuple

from repro.errors import ControlMessageError, OsdError, WireError
from repro.net.flush import StreamFlusher
from repro.net.stats import ServiceStats
from repro.osd import wire
from repro.osd.commands import OsdCommand, Write
from repro.osd.control import QueryMessage, parse_control_message
from repro.osd.sense import SenseCode
from repro.osd.target import OsdResponse, OsdTarget
from repro.osd.transport import FrameDecoder, frame_parts
from repro.osd.types import CONTROL_OBJECT, SERVICE_STATS_OBJECT, ObjectId

__all__ = ["ControlReadProvider", "FaultHook", "OsdServer", "RECV_CHUNK_BYTES"]

#: Read-side chunk size: the floor on the writable buffer tail handed to
#: the transport, so one ``recv_into`` can land many pipelined frames.
RECV_CHUNK_BYTES = 256 * 1024

#: Test/chaos hook called after a command executes, before its response is
#: sent. May sleep to delay the response past the client's timeout. Return
#: ``None`` for normal service, ``"drop"`` to sever the connection without
#: replying (executed but unacknowledged — the ambiguous case that makes
#: non-idempotent retries unsafe), or ``"timeout"`` to answer
#: ``SERVER_TIMEOUT`` sense data instead of the real response. Faults land
#: *after* execution so an abandoned attempt can never execute late and
#: clobber a newer write.
FaultHook = Callable[[OsdCommand, Optional[int]], Awaitable[Optional[str]]]

#: A server-side read endpoint: called with no arguments when a ``#QUERY#``
#: control write names its registered object id; returns the reply payload.
#: This is how the service layer exposes introspection data (stats, cluster
#: maps) through the ordinary OSD command vocabulary instead of a side
#: protocol — mirroring the paper's OID-0x10004 control-object pattern.
ControlReadProvider = Callable[[], bytes]


class _Connection(asyncio.BufferedProtocol):
    """Server-side protocol for one client socket.

    The transport fills the frame decoder's buffer directly
    (``get_buffer``/``buffer_updated``); complete frames are decoded and
    served synchronously in the same callback. Commands that need the
    fault-hook task path are admitted through a backlog bounded by the
    server's per-connection in-flight limit — while the backlog is
    non-empty (or the transport reports write pressure) the socket is
    paused, which is the protocol-world version of the old
    "stop reading while the semaphore is full" back-pressure.
    """

    def __init__(self, server: "OsdServer") -> None:
        self.server = server
        self.transport: Optional[asyncio.Transport] = None
        self.decoder = FrameDecoder(server.max_pdu_bytes)
        self.tasks: Set[asyncio.Task] = set()
        self.dropped = False
        #: Negotiated wire format: starts v1, sticky-upgrades to the
        #: highest version seen on a decoded command PDU.
        self.wire_version = wire.WIRE_V1
        self.flusher: Optional[StreamFlusher] = None
        #: Decoded-but-unserved commands beyond the in-flight bound.
        self._backlog: Deque[Tuple[Optional[int], OsdCommand]] = deque()
        self._in_flight = 0
        self._reading_paused = False
        self._write_paused = False
        self._eof_drain: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # asyncio.BufferedProtocol interface
    # ------------------------------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        assert isinstance(transport, asyncio.Transport)
        sock = transport.get_extra_info("socket")
        if sock is not None:
            # Response traffic is latency-sensitive: never sit in Nagle's
            # buffer waiting for an ACK.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.transport = transport
        self.flusher = StreamFlusher(
            transport, on_error=self.drop, on_flush=self.server._count_flush
        )
        self.server._register(self)

    def get_buffer(self, sizehint: int) -> memoryview:
        return self.decoder.get_buffer(max(sizehint, RECV_CHUNK_BYTES))

    def buffer_updated(self, nbytes: int) -> None:
        self.decoder.buffer_updated(nbytes)
        if self.dropped or self.server._draining:
            return
        try:
            for frame in self.decoder.frames():
                self.server._accept_frame(self, frame)
                if self.dropped or self.server._draining:
                    return
        except WireError:
            # Oversized/poisoned frame: the stream cannot be resynced.
            self.server.stats.wire_errors += 1
            self.drop()

    def eof_received(self) -> Optional[bool]:
        # Connection-level EOF: finish what was already accepted, then
        # close from our side (True keeps the transport open for writes).
        if self.tasks or self._backlog:
            self._eof_drain = asyncio.ensure_future(self._drain_then_close())
            return True
        self.drop()
        return False

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self.dropped = True
        self._backlog.clear()
        if self._eof_drain is not None:
            self._eof_drain.cancel()
        for task in self.tasks:
            task.cancel()
        if self.flusher is not None:
            self.flusher.abort()
        self.server._unregister(self)

    def pause_writing(self) -> None:
        # The transport's write buffer crossed its high-water mark: park
        # the flusher's standby drain and stop accepting bytes whose
        # responses would pile onto an already-pressured buffer.
        self._write_paused = True
        if self.flusher is not None:
            self.flusher.pause_writing()
        self._update_read_gate()

    def resume_writing(self) -> None:
        self._write_paused = False
        if self.flusher is not None:
            self.flusher.resume_writing()
        self._update_read_gate()

    # ------------------------------------------------------------------
    # Serving support
    # ------------------------------------------------------------------
    def send(self, response: OsdResponse, seq: Optional[int]) -> None:
        """Enqueue one response for the connection's next coalesced flush."""
        if self.dropped or self.flusher is None:
            return
        self.flusher.send(
            frame_parts(
                wire.encode_response_parts(
                    response, seq=seq, version=self.wire_version
                )
            )
        )

    def enqueue(self, seq: Optional[int], command: OsdCommand) -> None:
        """Admit one command to the fault-hook task path."""
        self._backlog.append((seq, command))
        self._pump()

    def _pump(self) -> None:
        while self._backlog and self._in_flight < self.server.max_in_flight:
            seq, command = self._backlog.popleft()
            self._in_flight += 1
            task = asyncio.ensure_future(
                self.server._serve_command(self, seq, command)
            )
            self.tasks.add(task)
            task.add_done_callback(self._task_done)
        self._update_read_gate()

    def _task_done(self, task: asyncio.Task) -> None:
        self.tasks.discard(task)
        self._in_flight -= 1
        if not self.dropped:
            self._pump()

    def _update_read_gate(self) -> None:
        """Pause the socket while back-pressured, resume when clear."""
        want_pause = self._write_paused or bool(self._backlog)
        if self.transport is None or self.transport.is_closing():
            return
        if want_pause and not self._reading_paused:
            self.transport.pause_reading()
            self._reading_paused = True
        elif not want_pause and self._reading_paused and not self.dropped:
            self.transport.resume_reading()
            self._reading_paused = False

    async def _drain_then_close(self) -> None:
        """Post-EOF drain: serve accepted commands, then close the socket."""
        deadline = asyncio.get_running_loop().time() + self.server.drain_timeout
        while self.tasks or self._backlog:
            pending = set(self.tasks)
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            if pending:
                await asyncio.wait(pending, timeout=remaining)
            else:
                await asyncio.sleep(0)
        self.drop()

    def drop(self) -> None:
        """Sever the connection immediately (fault injection / fatal error).

        Already-queued responses are pushed into the transport first;
        ``close()`` flushes the transport buffer before the FIN, so a
        drained-then-dropped connection still delivers its replies.
        """
        self.dropped = True
        self._backlog.clear()
        if self.flusher is not None:
            self.flusher.abort()
        if self.transport is not None and not self.transport.is_closing():
            self.transport.close()


class OsdServer:
    """Serves one :class:`~repro.osd.target.OsdTarget` over TCP."""

    def __init__(
        self,
        target: OsdTarget,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 32,
        max_total_in_flight: Optional[int] = None,
        max_pdu_bytes: int = wire.MAX_PDU_BYTES,
        drain_timeout: float = 5.0,
        fault_hook: Optional[FaultHook] = None,
        fault_plan: "object | None" = None,
        reuse_port: bool = False,
        sock: Optional[socket.socket] = None,
    ) -> None:
        """
        Args:
            fault_hook: explicit chaos hook (see :data:`FaultHook`).
            fault_plan: a :class:`repro.faults.FaultPlan` to derive the hook
                from when no explicit one is given — the same declarative
                plan that drives the simulated array maps onto wire-level
                faults (torn writes → dropped acks, transient read errors →
                timeouts, fail-slow → delayed responses).
            reuse_port: bind with ``SO_REUSEPORT`` so sibling worker
                processes can share the port (multi-process serving).
            sock: pre-bound listening socket to accept on instead of
                binding ``host:port`` — the sharded-accept fallback where
                ``SO_REUSEPORT`` is unavailable.
        """
        self.target = target
        self.host = host
        self.port = port
        self.max_in_flight = max_in_flight
        self.max_total_in_flight = max_total_in_flight
        self.max_pdu_bytes = max_pdu_bytes
        self.drain_timeout = drain_timeout
        if fault_hook is None and fault_plan is not None:
            from repro.faults import make_net_fault_hook

            fault_hook = make_net_fault_hook(fault_plan)
        self.fault_hook = fault_hook
        self.reuse_port = reuse_port
        self.sock = sock
        self.stats = ServiceStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._draining = False
        self._control_reads: dict = {}
        self.register_control_read(SERVICE_STATS_OBJECT, self.stats.to_json)

    def register_control_read(
        self, object_id: ObjectId, provider: ControlReadProvider
    ) -> None:
        """Expose ``provider()``'s payload at ``object_id`` via ``#QUERY#``.

        Subclasses and embedders use this to add introspection endpoints
        (the shard servers register the cluster map here) without touching
        the command dispatch path.
        """
        self._control_reads[object_id] = provider

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves the actual port for port 0."""
        loop = asyncio.get_running_loop()
        factory = lambda: _Connection(self)  # noqa: E731
        if self.sock is not None:
            self._server = await loop.create_server(factory, sock=self.sock)
        elif self.reuse_port:
            self._server = await loop.create_server(
                factory, self.host, self.port, reuse_port=True
            )
        else:
            self._server = await loop.create_server(factory, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful stop: stop accepting, drain in-flight, then close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while True:
            pending = [task for conn in self._connections for task in conn.tasks]
            remaining = deadline - loop.time()
            if not pending or remaining <= 0:
                break
            await asyncio.wait(pending, timeout=remaining)
        for conn in list(self._connections):
            conn.drop()
        # Let the transports deliver connection_lost and unregister the
        # connections before we return.
        await asyncio.sleep(0)

    async def __aenter__(self) -> "OsdServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------
    # Per-connection serving
    # ------------------------------------------------------------------
    def _register(self, conn: _Connection) -> None:
        self._connections.add(conn)
        self.stats.connections_total += 1
        self.stats.connections_active += 1

    def _unregister(self, conn: _Connection) -> None:
        if conn in self._connections:
            self._connections.discard(conn)
            self.stats.connections_active -= 1

    def _count_flush(self) -> None:
        self.stats.flushes += 1

    def _accept_frame(self, conn: _Connection, frame: memoryview) -> None:
        """Decode one framed PDU and serve it (inline or via a task).

        Runs synchronously inside ``buffer_updated``: the memoryview is
        only valid until the decoder's next batch, so decoding (which
        copies the payload out) happens before anything can interleave.
        """
        try:
            seq, retry, command, version = wire.decode_command_pdu(frame)
        except WireError:
            # The frame boundary held, so the stream is still good:
            # answer a structured failure and keep serving.
            self.stats.wire_errors += 1
            conn.send(OsdResponse(SenseCode.FAIL), seq=wire.salvage_seq(frame))
            return
        if version > conn.wire_version:
            # Negotiation: the first v2 command upgrades the connection;
            # every response from here on carries the binary header.
            conn.wire_version = version
        if retry:
            self.stats.retries_seen += 1
        if (
            self.max_total_in_flight is not None
            and self.stats.in_flight >= self.max_total_in_flight
        ):
            self.stats.busy_rejections += 1
            conn.send(OsdResponse(SenseCode.SERVER_BUSY), seq=seq)
            return
        if self.fault_hook is None:
            # Fast path: execution is synchronous, so a task per command
            # buys nothing but scheduler overhead. Serving inline also
            # means every command in this receive chunk lands its response
            # in the same coalesced flush.
            self._serve_inline(conn, seq, command)
            return
        # Backpressure: the connection pauses its socket while commands
        # are backlogged beyond the in-flight bound.
        conn.enqueue(seq, command)

    def _serve_inline(
        self, conn: _Connection, seq: Optional[int], command: OsdCommand
    ) -> None:
        """Hook-free serving: execute and enqueue without a task round trip."""
        self.stats.begin_command()
        started = time.perf_counter()
        ok = False
        try:
            response = self._execute(command)
            ok = response.ok
            conn.send(response, seq=seq)
        finally:
            self.stats.end_command(time.perf_counter() - started, ok)

    async def _serve_command(
        self, conn: _Connection, seq: Optional[int], command: OsdCommand
    ) -> None:
        self.stats.begin_command()
        started = time.perf_counter()
        ok = False
        try:
            response = self._execute(command)
            if self.fault_hook is not None:
                action = await self.fault_hook(command, seq)
                if action == "drop":
                    conn.drop()
                    return
                if action == "timeout":
                    self.stats.timeouts += 1
                    conn.send(OsdResponse(SenseCode.SERVER_TIMEOUT), seq=seq)
                    return
            ok = response.ok
            # No per-command drain: the connection's flusher ships every
            # response enqueued this tick with one writelines + one drain.
            conn.send(response, seq=seq)
        finally:
            self.stats.end_command(time.perf_counter() - started, ok)

    def _execute(self, command: OsdCommand) -> OsdResponse:
        control_reply = self._intercept_control_read(command)
        if control_reply is not None:
            return control_reply
        try:
            return command.apply(self.target)
        except OsdError:
            return OsdResponse(SenseCode.FAIL)

    def _intercept_control_read(self, command: OsdCommand) -> Optional[OsdResponse]:
        """Answer ``#QUERY#`` writes naming a registered read endpoint."""
        if not isinstance(command, Write) or command.object_id != CONTROL_OBJECT:
            return None
        try:
            message = parse_control_message(command.payload)
        except ControlMessageError:
            return None  # let the target report the malformed control write
        if isinstance(message, QueryMessage):
            provider = self._control_reads.get(message.object_id)
            if provider is not None:
                return OsdResponse(SenseCode.OK, payload=provider())
        return None

    def __repr__(self) -> str:
        state = "draining" if self._draining else "serving"
        return (
            f"OsdServer({self.host}:{self.port}, {state}, "
            f"connections={self.stats.connections_active}, "
            f"in_flight={self.stats.in_flight})"
        )


# ----------------------------------------------------------------------
# CLI: python -m repro.net.server
# ----------------------------------------------------------------------
def _build_target(num_devices: int, device_mb: int, chunk_kb: int, parity: int) -> OsdTarget:
    from repro.flash.array import FlashArray
    from repro.flash.stripe import ParityScheme
    from repro.osd.types import PARTITION_BASE

    array = FlashArray(
        num_devices=num_devices,
        device_capacity=device_mb * 1024 * 1024,
        chunk_size=chunk_kb * 1024,
    )
    target = OsdTarget(array, policy=lambda _cid: ParityScheme(parity))
    target.create_partition(PARTITION_BASE)
    return target


def main(argv: Optional[list] = None) -> int:
    """Run a standalone OSD server until interrupted."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Serve an in-memory OSD target over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7003)
    parser.add_argument("--devices", type=int, default=5)
    parser.add_argument("--device-mb", type=int, default=64)
    parser.add_argument("--chunk-kb", type=int, default=64)
    parser.add_argument("--parity", type=int, default=1)
    parser.add_argument("--max-in-flight", type=int, default=32)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes sharing the port, one target shard each "
        "(default 1 = single-process, in this process)",
    )
    args = parser.parse_args(argv)

    if args.workers > 1:
        from repro.net.cluster import WorkerPool

        pool = WorkerPool(
            lambda _worker_id: _build_target(
                args.devices, args.device_mb, args.chunk_kb, args.parity
            ),
            args.workers,
            host=args.host,
            port=args.port,
            max_in_flight=args.max_in_flight,
        )
        pool.start()
        mode = "SO_REUSEPORT" if pool.reuse_port else "sharded accept"
        print(
            f"osd worker pool listening on {args.host}:{pool.port} "
            f"({args.workers} workers, {mode}; Ctrl-C to stop)"
        )
        try:
            import signal

            signal.sigwait({signal.SIGINT, signal.SIGTERM})
        except (KeyboardInterrupt, AttributeError):
            pass
        finally:
            pool.shutdown()
            print("osd worker pool drained and closed")
        return 0

    async def _serve() -> None:
        target = _build_target(args.devices, args.device_mb, args.chunk_kb, args.parity)
        server = OsdServer(
            target, args.host, args.port, max_in_flight=args.max_in_flight
        )
        await server.start()
        print(f"osd server listening on {server.host}:{server.port} (Ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            await server.shutdown()
            print("osd server drained and closed")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
