"""Closed-loop multi-client load generator for the networked OSD server.

Each simulated client owns a private set of objects and issues a seeded
read/write mix with exactly one request outstanding (closed loop), so
offered concurrency equals the client count — the same model as the
simulator's concurrency sweep, but over real sockets.

Every read is *verified*: payload content is a pure function of
``(client, object index, version)``, so the generator detects lost or
corrupted responses byte-for-byte, not just error codes.
"""

from __future__ import annotations

import asyncio
import functools
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.net.client import AsyncOsdClient, OsdServiceError
from repro.net.retry import RetryPolicy
from repro.osd.types import FIRST_USER_OID, PARTITION_BASE, ObjectId

#: Builds one closed-loop client. Anything with the ``AsyncOsdClient``
#: surface (connect / write / read / aclose / stats) qualifies — the
#: cluster sweep passes :class:`~repro.cluster.router.RouterClient`
#: factories so the same verified workload drives a whole shard set.
ClientFactory = Callable[[int], AsyncOsdClient]

__all__ = ["LoadReport", "payload_for", "run_load", "run_load_sync"]

#: Objects per client; small enough that reads hit recently written data.
OBJECTS_PER_CLIENT = 16
#: OID stride between clients' private object ranges.
CLIENT_OID_STRIDE = 0x100


@functools.lru_cache(maxsize=256)
def payload_for(client: int, obj_index: int, version: int, size: int) -> bytes:
    """Deterministic payload content — the read-verification oracle.

    Cached: re-verifying the current version of a hot object must not bill
    a fresh PRNG seeding against the measured client loop.
    """
    return random.Random(f"{client}/{obj_index}/{version}").randbytes(size)


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run."""

    clients: int
    requests_per_client: int
    payload_bytes: int
    ops: int = 0
    errors: int = 0
    corrupted: int = 0
    payload_bytes_moved: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    connection_errors: int = 0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mb_per_sec(self) -> float:
        return self.payload_bytes_moved / self.wall_seconds / 1e6 if self.wall_seconds else 0.0

    def latency_ms(self, fraction: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] * 1e3

    @property
    def mean_latency_ms(self) -> float:
        return sum(self.latencies) / len(self.latencies) * 1e3 if self.latencies else 0.0


async def _client_seed(
    client_id: int,
    client: AsyncOsdClient,
    objects: List[ObjectId],
    sizes: List[int],
) -> None:
    """Warmup: connect and write every object once (outside the timed window)."""
    await client.connect()
    for index, object_id in enumerate(objects):
        await client.write(
            object_id, payload_for(client_id, index, 0, sizes[index]), class_id=3
        )


async def _client_loop(
    client_id: int,
    client: AsyncOsdClient,
    objects: List[ObjectId],
    report: LoadReport,
    *,
    requests: int,
    sizes: List[int],
    size_mix: Optional[Sequence[int]],
    write_fraction: float,
    seed: int,
) -> None:
    rng = random.Random(f"{seed}/{client_id}")
    versions = [0] * OBJECTS_PER_CLIENT
    for _ in range(requests):
        index = rng.randrange(OBJECTS_PER_CLIENT)
        object_id = objects[index]
        is_write = rng.random() < write_fraction
        started = time.perf_counter()
        try:
            if is_write:
                versions[index] += 1
                if size_mix is not None:
                    sizes[index] = size_mix[rng.randrange(len(size_mix))]
                payload = payload_for(
                    client_id, index, versions[index], sizes[index]
                )
                response = await client.write(object_id, payload, class_id=3)
                ok = response.ok
            else:
                payload, response = await client.read(object_id)
                ok = response.ok
                expected = payload_for(
                    client_id, index, versions[index], sizes[index]
                )
                if ok and payload != expected:
                    report.corrupted += 1
        except OsdServiceError:
            ok = False
        elapsed = time.perf_counter() - started
        report.ops += 1
        report.latencies.append(elapsed)
        if ok:
            report.payload_bytes_moved += sizes[index]
        else:
            report.errors += 1
    report.retries += client.stats.retries
    report.timeouts += client.stats.timeouts
    report.connection_errors += client.stats.connection_errors


async def run_load(
    host: str,
    port: int,
    *,
    clients: int = 8,
    requests_per_client: int = 100,
    payload_bytes: int = 4096,
    payload_mix: Optional[Sequence[int]] = None,
    write_fraction: float = 0.35,
    seed: int = 1234,
    timeout: float = 2.0,
    retry: Optional[RetryPolicy] = None,
    client_factory: Optional[ClientFactory] = None,
    wire_version: Optional[int] = None,
) -> LoadReport:
    """Drive the server with ``clients`` concurrent closed-loop clients.

    Connection setup and the initial object seeding happen *before* the
    timed window opens, so the reported rates measure steady-state service,
    not connect/warmup cost.

    ``payload_mix`` switches to a multi-size workload: every write draws
    its size from the mix (seeded, per client), and read verification
    checks the last written size per object — the small-object profile
    uses this with tiny (≤256 B) sizes, where header bytes dominate.
    ``payload_bytes`` then only seeds the warmup objects.

    ``wire_version`` pins the clients to a wire format
    (:data:`~repro.osd.wire.WIRE_V1` / :data:`~repro.osd.wire.WIRE_V2`);
    ``None`` keeps the client default (v2).

    ``client_factory`` (client id → client) substitutes any
    ``AsyncOsdClient``-shaped object — e.g. a cluster ``RouterClient`` —
    for the default single-server client; ``host``/``port`` are then
    ignored (as is ``wire_version`` — the factory owns client setup).
    """
    report = LoadReport(
        clients=clients,
        requests_per_client=requests_per_client,
        payload_bytes=payload_bytes,
    )
    retry = retry or RetryPolicy(seed=seed)
    if client_factory is None:
        client_kwargs = {} if wire_version is None else {"wire_version": wire_version}
        pool = [
            AsyncOsdClient(
                host, port, pool_size=1, timeout=timeout, retry=retry, **client_kwargs
            )
            for _ in range(clients)
        ]
    else:
        pool = [client_factory(client_id) for client_id in range(clients)]
    object_sets = [
        [
            ObjectId(
                PARTITION_BASE,
                FIRST_USER_OID + CLIENT_OID_STRIDE * (client_id + 1) + i,
            )
            for i in range(OBJECTS_PER_CLIENT)
        ]
        for client_id in range(clients)
    ]
    #: Last-written size per (client, object) — the verification oracle's
    #: size component when the mix varies payloads per write.
    size_sets = [[payload_bytes] * OBJECTS_PER_CLIENT for _ in range(clients)]
    try:
        await asyncio.gather(*(
            _client_seed(
                client_id, pool[client_id], object_sets[client_id], size_sets[client_id]
            )
            for client_id in range(clients)
        ))
        started = time.perf_counter()
        await asyncio.gather(*(
            _client_loop(
                client_id,
                pool[client_id],
                object_sets[client_id],
                report,
                requests=requests_per_client,
                sizes=size_sets[client_id],
                size_mix=payload_mix,
                write_fraction=write_fraction,
                seed=seed,
            )
            for client_id in range(clients)
        ))
        report.wall_seconds = time.perf_counter() - started
    finally:
        for client in pool:
            await client.aclose()
    return report


def run_load_sync(host: str, port: int, **kwargs) -> LoadReport:
    """Blocking wrapper around :func:`run_load` for synchronous callers."""
    return asyncio.run(run_load(host, port, **kwargs))
