"""A simulated flash SSD.

Each :class:`FlashDevice` stores chunk payloads keyed by
``(stripe_id, fragment_index)``, models service time through a
:class:`~repro.flash.latency.ServiceTimeModel`, and exposes the failure
lifecycle the paper's evaluation exercises: a device can be *failed*
(shootdown — all resident chunks become unreadable) and later *replaced* by a
fresh spare that background recovery repopulates.

A light flash-wear model is included: program and erase counters per device,
so experiments can report write amplification and wear imbalance even though
the paper itself does not fail devices by wear-out.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.errors import (
    ChunkCorruptedError,
    ChunkMissingError,
    DeviceFailedError,
    DeviceFullError,
)
from repro.flash.latency import INTEL_540S_SSD, ServiceTimeModel

__all__ = ["ChunkAddress", "DeviceState", "DeviceStats", "FlashDevice"]

#: A chunk is globally addressed by (stripe id, fragment index in the stripe).
ChunkAddress = Tuple[int, int]


class DeviceState(enum.Enum):
    """Lifecycle state of a simulated device."""

    ONLINE = "online"
    #: Demoted by the health monitor: still serves I/O, but placement stops
    #: putting new chunks here and reads prefer peers/parity.
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclass
class DeviceStats:
    """Cumulative I/O counters for one device."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Program operations, a proxy for flash wear.
    programs: int = 0
    #: Erase operations (chunk deletions / whole-device replacement).
    erases: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # wear counters survive a stats reset on purpose: wear is physical.

    def wear(self) -> Tuple[int, int]:
        """The physical wear counters, ``(programs, erases)``.

        These survive :meth:`reset`: resetting I/O accounting between
        experiment phases must not forget how worn the flash is.
        """
        return (self.programs, self.erases)


@dataclass
class FlashDevice:
    """One simulated SSD in the array.

    Attributes:
        device_id: position of the device in the array.
        capacity_bytes: usable capacity.
        model: service-time model for read/write operations.
    """

    device_id: int
    capacity_bytes: int
    model: ServiceTimeModel = INTEL_540S_SSD
    state: DeviceState = DeviceState.ONLINE
    stats: DeviceStats = field(default_factory=DeviceStats)
    #: Completion time of the last scheduled operation (for queueing).
    busy_until: float = 0.0
    #: How many device replacements happened in this slot (spare insertions).
    generation: int = 0
    #: Optional flash-translation-layer accounting (GC, wear, write
    #: amplification); attach a :class:`~repro.flash.ftl.PageMappedFtl`.
    ftl: "object | None" = None
    #: Optional fault injector (:class:`repro.faults.FaultInjector`); the
    #: read/write paths call back into it when set.
    fault_injector: "object | None" = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("device capacity must be positive")
        self._chunks: Dict[ChunkAddress, bytes] = {}
        #: CRC32 recorded at program time, verified on every read — the
        #: defence against silent (bit-rot) corruption.
        self._checksums: Dict[ChunkAddress, int] = {}
        self._used = 0
        #: Addresses whose last read failed its checksum, still unrepaired.
        #: Lets the health monitor and the scrub scheduler target the damage
        #: without a full sweep; a successful rewrite clears the entry.
        self.corrupt_chunks: Set[ChunkAddress] = set()

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently stored on the device."""
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def is_online(self) -> bool:
        """True only for fully-trusted ONLINE devices (placement eligibility)."""
        return self.state is DeviceState.ONLINE

    @property
    def is_available(self) -> bool:
        """True when the device can serve I/O (ONLINE or SUSPECT)."""
        return self.state is not DeviceState.FAILED

    # ------------------------------------------------------------------
    # I/O — each call returns the simulated service time in seconds.
    # ------------------------------------------------------------------
    def write_chunk(self, address: ChunkAddress, payload: bytes) -> float:
        """Store (or overwrite) a chunk; returns the simulated service time."""
        self._check_serviceable()
        if self.fault_injector is not None:
            self.fault_injector.on_write(self, address)
            self._check_serviceable()
        previous = self._chunks.get(address)
        new_used = self._used - (len(previous) if previous is not None else 0) + len(payload)
        if new_used > self.capacity_bytes:
            raise DeviceFullError(
                f"device {self.device_id}: chunk of {len(payload)} bytes does not fit "
                f"({self.free_bytes} free)"
            )
        if previous is not None:
            # Overwriting flash means programming new pages; the old ones are
            # erased by garbage collection, which we bill immediately.
            self.stats.erases += 1
            if self.ftl is not None:
                self.ftl.trim_extent(address, len(previous))
        self._chunks[address] = bytes(payload)
        self._checksums[address] = zlib.crc32(payload)
        self._used = new_used
        self.corrupt_chunks.discard(address)
        if self.ftl is not None:
            self.ftl.write_extent(address, len(payload))
        self.stats.writes += 1
        self.stats.programs += 1
        self.stats.bytes_written += len(payload)
        if self.fault_injector is not None:
            # Torn-write injection mutates the just-programmed bytes.
            self.fault_injector.after_write(self, address)
        service = self.model.write_time(len(payload))
        if self.fault_injector is not None:
            service = self.fault_injector.scale_time(self, service)
        return service

    def read_chunk(self, address: ChunkAddress) -> Tuple[bytes, float]:
        """Fetch a chunk; returns ``(payload, simulated service time)``.

        Raises:
            ChunkMissingError: no chunk at the address.
            ChunkCorruptedError: the stored bytes fail their program-time
                checksum; the address is remembered in :attr:`corrupt_chunks`
                until a rewrite repairs it.
            TransientIoError: injected soft failure; the chunk is intact.
        """
        self._check_serviceable()
        if self.fault_injector is not None:
            # May raise TransientIoError, rot the stored bytes (caught by
            # the CRC check below), or fire a due fail-stop on any device.
            self.fault_injector.on_read(self, address)
            self._check_serviceable()
        try:
            payload = self._chunks[address]
        except KeyError:
            raise ChunkMissingError(
                f"device {self.device_id}: no chunk at {address}"
            ) from None
        self.stats.reads += 1
        self.stats.bytes_read += len(payload)
        if zlib.crc32(payload) != self._checksums[address]:
            self.corrupt_chunks.add(address)
            raise ChunkCorruptedError(
                f"device {self.device_id}: checksum mismatch at {address}"
            )
        service = self.model.read_time(len(payload))
        if self.fault_injector is not None:
            service = self.fault_injector.scale_time(self, service)
        return payload, service

    def delete_chunk(self, address: ChunkAddress) -> None:
        """Drop a chunk. Deleting a missing chunk raises; deletes are metadata
        operations and are billed no simulated time (TRIM is asynchronous)."""
        self._check_serviceable()
        try:
            payload = self._chunks.pop(address)
        except KeyError:
            raise ChunkMissingError(
                f"device {self.device_id}: no chunk at {address}"
            ) from None
        self._checksums.pop(address, None)
        self.corrupt_chunks.discard(address)
        self._used -= len(payload)
        self.stats.deletes += 1
        self.stats.erases += 1
        if self.ftl is not None:
            self.ftl.trim_extent(address, len(payload))

    def has_chunk(self, address: ChunkAddress) -> bool:
        """True if the chunk is present *and* the device can serve it."""
        return self.is_available and address in self._chunks

    def verify_chunk(self, address: ChunkAddress) -> bool:
        """Recompute a stored chunk's checksum without billing an I/O.

        Metadata-only integrity probe used by targeted scrubbing and tests;
        returns False for corrupt bytes, raises for a missing chunk.
        """
        self._check_serviceable()
        try:
            payload = self._chunks[address]
        except KeyError:
            raise ChunkMissingError(
                f"device {self.device_id}: no chunk at {address}"
            ) from None
        return zlib.crc32(payload) == self._checksums[address]

    # ------------------------------------------------------------------
    # Failure lifecycle
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Shoot the device down: all resident chunks become unreadable."""
        self.state = DeviceState.FAILED

    def suspect(self) -> None:
        """Demote an ONLINE device to SUSPECT (health-monitor verdict)."""
        if self.state is DeviceState.ONLINE:
            self.state = DeviceState.SUSPECT

    def corrupt_chunk(self, address: ChunkAddress) -> None:
        """Fault injection: flip bits in a stored chunk (silent corruption).

        The chunk stays present and readable-looking; the next read trips
        the checksum and raises :class:`ChunkCorruptedError`.
        """
        self.corrupt_stored(address, offset=0, flip=0xFF)

    def corrupt_stored(self, address: ChunkAddress, offset: int, flip: int) -> bool:
        """XOR ``flip`` into stored byte ``offset % len`` (latent bit-rot).

        Returns True when bytes actually changed (empty chunks and a zero
        ``flip`` cannot rot). The program-time checksum is left untouched,
        so the next read raises :class:`ChunkCorruptedError`.
        """
        self._check_serviceable()
        try:
            payload = bytearray(self._chunks[address])
        except KeyError:
            raise ChunkMissingError(
                f"device {self.device_id}: no chunk at {address}"
            ) from None
        if not payload or not flip & 0xFF:
            return False
        payload[offset % len(payload)] ^= flip & 0xFF
        self._chunks[address] = bytes(payload)
        return True

    def tear_stored(self, address: ChunkAddress, keep_fraction: float) -> bool:
        """Truncate a stored chunk to a prefix (torn-write injection).

        The recorded checksum still describes the *intended* payload, so the
        next read trips the CRC — the acknowledged-but-not-durable outcome
        of a power-fail torn write. A fraction that would keep every byte
        flips the final byte instead so the write is still detectably torn.
        Returns True when the stored bytes changed.
        """
        self._check_serviceable()
        try:
            payload = self._chunks[address]
        except KeyError:
            raise ChunkMissingError(
                f"device {self.device_id}: no chunk at {address}"
            ) from None
        if not payload:
            return False
        keep = min(len(payload) - 1, int(len(payload) * keep_fraction))
        if keep < 0:
            keep = 0
        torn = payload[:keep] if keep else b""
        if keep == len(payload) - 1:
            torn = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        self._chunks[address] = torn
        self._used -= len(payload) - len(torn)
        return True

    def replace(self) -> None:
        """Swap in a fresh spare at this slot: empty, online, zero queue."""
        self._chunks.clear()
        self._checksums.clear()
        self.corrupt_chunks.clear()
        self._used = 0
        self.state = DeviceState.ONLINE
        self.generation += 1
        self.stats.erases += 1
        if self.ftl is not None:
            # The spare arrives with a pristine FTL of the same geometry.
            self.ftl = type(self.ftl)(self.ftl.config)

    def _check_serviceable(self) -> None:
        if not self.is_available:
            raise DeviceFailedError(self.device_id)

    def __repr__(self) -> str:
        return (
            f"FlashDevice(id={self.device_id}, state={self.state.value}, "
            f"used={self._used}/{self.capacity_bytes})"
        )
