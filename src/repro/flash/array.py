"""The simulated flash array: object placement, degraded reads, rebuild.

:class:`FlashArray` is the storage engine under the OSD target. It lays
objects out in stripes across the *online* devices, encodes parity with
Reed-Solomon, serves degraded reads by decoding surviving fragments, and
rebuilds lost fragments onto a replacement spare. All I/O is billed in
simulated time: chunks on distinct devices transfer in parallel, operations
queued on the same device serialize through the device's ``busy_until``.

Space accounting distinguishes logical user bytes from redundancy bytes,
which is exactly the paper's *space efficiency* metric (§VI-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.erasure.rs import RSCodec
from repro.errors import (
    ChunkCorruptedError,
    DeviceFailedError,
    ErasureError,
    FlashError,
    ObjectExistsError,
    ObjectNotFoundError,
    StripeLayoutError,
    TransientIoError,
    UnrecoverableDataError,
)
from repro.flash.device import FlashDevice
from repro.flash.latency import INTEL_540S_SSD, ServiceTimeModel
from repro.flash.stripe import (
    ChunkKind,
    ChunkLocation,
    RedundancyScheme,
    ReplicationScheme,
    StripeDescriptor,
    pack_fragments,
    split_payload,
)
from repro.sim.clock import SimClock

__all__ = [
    "ArrayIoResult",
    "DeviceIoSample",
    "FlashArray",
    "ObjectExtent",
    "ObjectHealth",
    "ScrubReport",
]

ObjectKey = Hashable


@lru_cache(maxsize=1024)
def _scheme_geometry(scheme: RedundancyScheme, width: int) -> Tuple[int, bool]:
    """Validated per-(scheme, width) stripe geometry for the write path.

    Schemes are frozen policy values, so the validation + geometry
    arithmetic is a pure function of ``(scheme, width)`` — cached here so
    the per-write cost is one dict probe instead of re-deriving it.
    """
    scheme.validate(width)
    return scheme.data_chunks_per_stripe(width), isinstance(scheme, ReplicationScheme)


class ObjectHealth(enum.Enum):
    """Availability of an object given the current device states."""

    #: Every chunk lives on an online device.
    HEALTHY = "healthy"
    #: Some chunks are lost but every stripe can still be decoded.
    DEGRADED = "degraded"
    #: At least one stripe lost more fragments than its code tolerates.
    LOST = "lost"


@dataclass
class DeviceIoSample:
    """Per-device slice of one array operation (health-monitor food)."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Service seconds billed to the device during the operation.
    seconds: float = 0.0
    #: Integrity/soft failures the device produced (checksum, transient).
    errors: int = 0

    def merge(self, other: "DeviceIoSample") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.seconds += other.seconds
        self.errors += other.errors


@dataclass
class ArrayIoResult:
    """Outcome of one array operation, in simulated terms."""

    elapsed: float = 0.0
    chunks_read: int = 0
    chunks_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: True when the operation had to decode around missing fragments.
    degraded: bool = False
    #: Which array entry point produced this result ("read", "write",
    #: "update", "rebuild", "scrub"); lets the health monitor separate
    #: foreground degraded reads from repair traffic.
    op: str = ""
    #: Per-device observations, keyed by device id.
    device_io: Dict[int, DeviceIoSample] = field(default_factory=dict)

    def merge(self, other: "ArrayIoResult") -> None:
        """Fold another result into this one (sequential composition)."""
        self.elapsed += other.elapsed
        self.chunks_read += other.chunks_read
        self.chunks_written += other.chunks_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.degraded = self.degraded or other.degraded
        for device_id, sample in other.device_io.items():
            mine = self.device_io.get(device_id)
            if mine is None:
                self.device_io[device_id] = DeviceIoSample(**vars(sample))
            else:
                mine.merge(sample)


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over the array."""

    objects_checked: int = 0
    chunks_checked: int = 0
    chunks_repaired: int = 0
    unrecoverable_objects: List[ObjectKey] = field(default_factory=list)
    io: ArrayIoResult = field(default_factory=ArrayIoResult)


@dataclass
class ObjectExtent:
    """Array-side metadata for one stored object."""

    key: ObjectKey
    size: int
    scheme: RedundancyScheme
    stripes: List[StripeDescriptor] = field(default_factory=list)

    @property
    def stored_bytes(self) -> int:
        return sum(chunk.length for stripe in self.stripes for chunk in stripe.chunks)

    @property
    def data_bytes(self) -> int:
        return sum(
            chunk.length
            for stripe in self.stripes
            for chunk in stripe.chunks
            if chunk.kind is ChunkKind.DATA
        )

    @property
    def redundancy_bytes(self) -> int:
        return self.stored_bytes - self.data_bytes


class _IoBatch:
    """Accumulates chunk operations and bills simulated time.

    Chunks on different devices proceed in parallel; multiple operations on
    the same device serialize. ``finish`` advances each involved device's
    ``busy_until`` and returns the critical-path elapsed time.
    """

    def __init__(self, start: float, op: str = "") -> None:
        self._start = start
        self._service: Dict[int, float] = {}
        self._wait: Dict[int, float] = {}
        self.result = ArrayIoResult(op=op)

    def _begin(self, device: FlashDevice) -> None:
        if device.device_id not in self._wait:
            self._wait[device.device_id] = max(0.0, device.busy_until - self._start)
            self._service[device.device_id] = 0.0

    def _sample(self, device: FlashDevice) -> DeviceIoSample:
        sample = self.result.device_io.get(device.device_id)
        if sample is None:
            sample = DeviceIoSample()
            self.result.device_io[device.device_id] = sample
        return sample

    def read(self, device: FlashDevice, address: Tuple[int, int]) -> bytes:
        self._begin(device)
        sample = self._sample(device)
        try:
            payload, service_time = device.read_chunk(address)
        except (ChunkCorruptedError, TransientIoError):
            sample.reads += 1
            sample.errors += 1
            raise
        self._service[device.device_id] += service_time
        self.result.chunks_read += 1
        self.result.bytes_read += len(payload)
        sample.reads += 1
        sample.bytes_read += len(payload)
        sample.seconds += service_time
        return payload

    def write(self, device: FlashDevice, address: Tuple[int, int], payload: bytes) -> None:
        self._begin(device)
        service_time = device.write_chunk(address, payload)
        self._service[device.device_id] += service_time
        self.result.chunks_written += 1
        self.result.bytes_written += len(payload)
        sample = self._sample(device)
        sample.writes += 1
        sample.bytes_written += len(payload)
        sample.seconds += service_time

    def charge(self, device: FlashDevice, seconds: float) -> None:
        """Bill raw device time (e.g. decode CPU attributed to the reader)."""
        self._begin(device)
        self._service[device.device_id] += seconds
        self._sample(device).seconds += seconds

    def finish(self, by_id: Dict[int, FlashDevice]) -> ArrayIoResult:
        elapsed = 0.0
        for device_id, service in self._service.items():
            completion = self._wait[device_id] + service
            elapsed = max(elapsed, completion)
            device = by_id[device_id]
            device.busy_until = self._start + completion
        self.result.elapsed = elapsed
        return self.result


class FlashArray:
    """An array of simulated flash devices managing objects in stripes."""

    def __init__(
        self,
        num_devices: int = 5,
        device_capacity: int = 120 * 10**9,
        chunk_size: int = 64 * 1024,
        clock: Optional[SimClock] = None,
        model: ServiceTimeModel = INTEL_540S_SSD,
    ) -> None:
        if num_devices < 1:
            raise StripeLayoutError("an array needs at least one device")
        if chunk_size < 1:
            raise StripeLayoutError("chunk size must be positive")
        self.clock = clock or SimClock()
        self.chunk_size = chunk_size
        self.devices: List[FlashDevice] = [
            FlashDevice(device_id=i, capacity_bytes=device_capacity, model=model)
            for i in range(num_devices)
        ]
        #: Zero-cost billing fast path: device membership is fixed for the
        #: array's lifetime (``fail``/``replace`` mutate devices in place),
        #: so the id→device map is built once instead of per operation.
        self._devices_by_id: Dict[int, FlashDevice] = {
            device.device_id: device for device in self.devices
        }
        self._objects: Dict[ObjectKey, ObjectExtent] = {}
        self._next_stripe_id = 0
        self._codecs: Dict[Tuple[int, int], RSCodec] = {}
        # Incremental space accounting.
        self._logical_bytes = 0
        self._data_bytes = 0
        self._redundancy_bytes = 0
        #: stripe id -> owning object key (targeted scrub, corruption triage).
        self._stripe_owners: Dict[int, ObjectKey] = {}
        #: Optional health monitor (:class:`repro.core.health.HealthMonitor`);
        #: every finished batch is fed to it as an :class:`ArrayIoResult`.
        self.health: "object | None" = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Total device slots, live or failed."""
        return len(self.devices)

    @property
    def online_devices(self) -> List[FlashDevice]:
        """Fully-trusted devices: targets for new chunk placement."""
        return [device for device in self.devices if device.is_online]

    @property
    def online_count(self) -> int:
        return len(self.online_devices)

    @property
    def available_devices(self) -> List[FlashDevice]:
        """Devices that can serve I/O: ONLINE plus SUSPECT."""
        return [device for device in self.devices if device.is_available]

    @property
    def available_count(self) -> int:
        return len(self.available_devices)

    @property
    def suspect_devices(self) -> List[FlashDevice]:
        return [
            device for device in self.devices if device.is_available and not device.is_online
        ]

    @property
    def capacity_bytes(self) -> int:
        """Capacity of the online devices."""
        return sum(device.capacity_bytes for device in self.online_devices)

    @property
    def used_bytes(self) -> int:
        return sum(device.used_bytes for device in self.online_devices)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def logical_bytes(self) -> int:
        """User bytes stored, before redundancy and padding."""
        return self._logical_bytes

    @property
    def data_bytes(self) -> int:
        """Bytes in data chunks (logical bytes plus padding)."""
        return self._data_bytes

    @property
    def redundancy_bytes(self) -> int:
        """Bytes in parity and replica chunks."""
        return self._redundancy_bytes

    @property
    def space_efficiency(self) -> float:
        """User data as a fraction of all occupied space (paper §VI-B)."""
        occupied = self._data_bytes + self._redundancy_bytes
        if occupied == 0:
            return 1.0
        return self._data_bytes / occupied

    def __contains__(self, key: ObjectKey) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def keys(self) -> Iterable[ObjectKey]:
        return self._objects.keys()

    def get_extent(self, key: ObjectKey) -> ObjectExtent:
        try:
            return self._objects[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r} in array") from None

    def object_size(self, key: ObjectKey) -> int:
        return self.get_extent(key).size

    def stored_bytes_for(self, key: ObjectKey) -> int:
        return self.get_extent(key).stored_bytes

    def estimate_stored_bytes(self, size: int, scheme: RedundancyScheme) -> int:
        """Projected stored bytes for an object of ``size`` under ``scheme``.

        Uses the current online width; padding makes this a slight
        underestimate for tiny objects, which admission control tolerates.
        """
        width = self.online_count
        scheme.validate(width)
        return int(size * scheme.storage_multiplier(width)) if size else 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write_object(
        self,
        key: ObjectKey,
        payload: bytes,
        scheme: RedundancyScheme,
        overwrite: bool = False,
    ) -> ArrayIoResult:
        """Stripe, encode, and store an object across the online devices.

        Overwrites are transactional: the new stripes are written first and
        the old copy is only deleted after they all land, so a mid-write
        failure (e.g. :class:`DeviceFullError`) rolls back and leaves the
        previous copy intact.
        """
        previous = self._objects.get(key)
        if previous is not None and not overwrite:
            raise ObjectExistsError(f"object {key!r} already stored")
        online = self.online_devices
        width = len(online)
        data_per_stripe, is_replication = _scheme_geometry(scheme, width)
        device_ids = [device.device_id for device in online]
        by_id = self._devices_by_id

        extent = ObjectExtent(key=key, size=len(payload), scheme=scheme)
        batch = _IoBatch(self.clock.now, op="write")
        offset = 0
        try:
            for stripe_payload, chunk_length in split_payload(
                len(payload), self.chunk_size, data_per_stripe
            ):
                stripe_id = self._next_stripe_id
                self._next_stripe_id += 1
                # Rotate by the *global* stripe id so parity lands evenly
                # across devices regardless of object sizes (§IV-C.3).
                plan = scheme.plan(device_ids, stripe_id)
                raw = payload[offset : offset + stripe_payload]
                offset += stripe_payload
                # One (k, chunk_length) stack per stripe: parity comes out
                # of a single fused matvec, no per-fragment re-wrapping.
                stack = pack_fragments(raw, data_per_stripe, chunk_length)
                if is_replication:
                    stripe_fragments = [stack[0].tobytes()] * len(plan)
                    parity_count = 0
                else:
                    parity_count = len(plan) - data_per_stripe
                    codec = self._codec(data_per_stripe, parity_count)
                    parity = codec.encode_arrays(stack)
                    stripe_fragments = [
                        stack[index].tobytes() for index in range(data_per_stripe)
                    ] + [parity[row].tobytes() for row in range(parity_count)]
                locations: List[ChunkLocation] = []
                for slot in plan:
                    chunk_payload = stripe_fragments[slot.fragment_index]
                    location = ChunkLocation(
                        stripe_id=stripe_id,
                        fragment_index=slot.fragment_index,
                        device_id=slot.device_id,
                        kind=slot.kind,
                        length=len(chunk_payload),
                    )
                    batch.write(by_id[slot.device_id], location.address, chunk_payload)
                    locations.append(location)
                extent.stripes.append(
                    StripeDescriptor(
                        stripe_id=stripe_id,
                        payload_bytes=stripe_payload,
                        data_count=data_per_stripe,
                        parity_count=parity_count,
                        chunks=tuple(locations),
                        replicated=is_replication,
                    )
                )
        except (FlashError, ErasureError):
            # Roll back on storage/encoding failures (device full, failed
            # mid-write, infeasible layout): drop the partially written new
            # chunks so the previous copy (if any) remains authoritative.
            # Non-storage exceptions propagate untouched — injected faults
            # and programming errors must never be silently swallowed here.
            self._discard_chunks(extent)
            raise
        if previous is not None:
            self._discard_chunks(previous)
            self._unregister_stripes(previous)
            self._logical_bytes -= previous.size
            self._data_bytes -= previous.data_bytes
            self._redundancy_bytes -= previous.redundancy_bytes
        self._objects[key] = extent
        for stripe in extent.stripes:
            self._stripe_owners[stripe.stripe_id] = key
        self._logical_bytes += extent.size
        self._data_bytes += extent.data_bytes
        self._redundancy_bytes += extent.redundancy_bytes
        return self._finish(batch)

    def _discard_chunks(self, extent: ObjectExtent) -> None:
        """Remove an extent's chunks from whichever live devices hold them."""
        by_id = self._devices_by_id
        for stripe in extent.stripes:
            for chunk in stripe.chunks:
                device = by_id[chunk.device_id]
                if device.has_chunk(chunk.address):
                    device.delete_chunk(chunk.address)

    def _unregister_stripes(self, extent: ObjectExtent) -> None:
        for stripe in extent.stripes:
            self._stripe_owners.pop(stripe.stripe_id, None)

    def _finish(self, batch: "_IoBatch") -> ArrayIoResult:
        """Close a batch and feed the observation to the health monitor."""
        result = batch.finish(self.devices)
        if self.health is not None:
            self.health.ingest(result, self.clock.now)
        return result

    # ------------------------------------------------------------------
    # Read path (normal and degraded)
    # ------------------------------------------------------------------
    def read_object(self, key: ObjectKey) -> Tuple[bytes, ArrayIoResult]:
        """Read an object, decoding around failed devices when necessary.

        Raises:
            ObjectNotFoundError: the key is unknown.
            UnrecoverableDataError: a stripe lost more fragments than its
                redundancy tolerates.
        """
        extent = self.get_extent(key)
        batch = _IoBatch(self.clock.now, op="read")
        by_id = self._devices_by_id
        pieces: List[bytes] = []
        for stripe in extent.stripes:
            pieces.append(self._read_stripe(stripe, batch, by_id))
        payload = b"".join(pieces)[: extent.size]
        return payload, self._finish(batch)

    @staticmethod
    def _fragment_order(
        available: Dict[int, ChunkLocation], by_id: Dict[int, FlashDevice]
    ) -> List[int]:
        """Fragment indices, trusted fragments first.

        Two demotions: fragments whose address already tripped a checksum
        (in the device's ``corrupt_chunks``, awaiting scrub) go last — they
        *will* fail again, and rereading them just feeds error telemetry
        for damage that is already known. Fragments on SUSPECT devices go
        behind clean ONLINE ones: a suspect fragment is only pulled when
        the healthy ones cannot satisfy the stripe. Within a tier, index
        order keeps data fragments ahead of parity (cheapest path when
        nothing is wrong).
        """

        def rank(index: int) -> Tuple[bool, bool, int]:
            chunk = available[index]
            device = by_id[chunk.device_id]
            return (chunk.address in device.corrupt_chunks, not device.is_online, index)

        return sorted(available, key=rank)

    def _read_stripe(
        self,
        stripe: StripeDescriptor,
        batch: _IoBatch,
        by_id: Dict[int, FlashDevice],
    ) -> bytes:
        available: Dict[int, ChunkLocation] = {}
        for chunk in stripe.chunks:
            device = by_id[chunk.device_id]
            if device.has_chunk(chunk.address):
                available[chunk.fragment_index] = chunk

        if stripe.replicated:
            for index in self._fragment_order(available, by_id):
                chunk = available[index]
                payload = self._read_fragment(batch, by_id, chunk)
                if payload is None:
                    batch.result.degraded = True
                    continue
                if chunk.kind is not ChunkKind.DATA:
                    batch.result.degraded = True
                return payload[: stripe.payload_bytes]
            raise UnrecoverableDataError(
                f"stripe {stripe.stripe_id}: all replicas lost or corrupted"
            )

        k = stripe.data_count
        fragments: Dict[int, bytes] = {}
        # Pull fragments trusted-first (data before parity within a tier); a
        # checksum failure drops the fragment and the next survivor takes
        # its place.
        for index in self._fragment_order(available, by_id):
            if len(fragments) == k:
                break
            payload = self._read_fragment(batch, by_id, available[index])
            if payload is None:
                batch.result.degraded = True
                continue
            fragments[index] = payload
        if len(fragments) < k:
            raise UnrecoverableDataError(
                f"stripe {stripe.stripe_id}: {len(fragments)} readable fragments, "
                f"{k} needed"
            )
        if all(index in fragments for index in range(k)):
            return b"".join(fragments[i] for i in range(k))[: stripe.payload_bytes]
        batch.result.degraded = True
        codec = self._codec(k, stripe.parity_count)
        # decode_arrays returns a contiguous (k, length) stack, so the
        # stripe payload is its raw row-major bytes — one copy, no joins.
        data = codec.decode_arrays(fragments)
        return data.tobytes()[: stripe.payload_bytes]

    @staticmethod
    def _read_fragment(
        batch: _IoBatch,
        by_id: Dict[int, FlashDevice],
        chunk: ChunkLocation,
    ) -> Optional[bytes]:
        """Read one fragment; corruption or a transient fault returns None.

        Either way the error is recorded in the batch's per-device sample
        (health-monitor food); corruption additionally lands in the
        device's ``corrupt_chunks`` set for targeted scrubbing.
        """
        try:
            return batch.read(by_id[chunk.device_id], chunk.address)
        except (ChunkCorruptedError, TransientIoError):
            return None

    # ------------------------------------------------------------------
    # Partial updates (paper §II-B: direct vs delta parity updating)
    # ------------------------------------------------------------------
    def update_range(self, key: ObjectKey, offset: int, data: bytes) -> ArrayIoResult:
        """Update ``data`` at byte ``offset`` of a stored object in place.

        Only the affected stripes are touched. For each parity stripe the
        cheaper of the two parity-update strategies is chosen by fragment
        reads, as the paper prescribes:

        - **delta**: read the old data fragments and old parity, apply
          ``P' = P + C * (D' + D)``;
        - **direct**: read the untouched sibling fragments and re-encode.

        The object must be fully healthy (no missing or corrupt fragments);
        degraded objects should be repaired (or restriped) first.

        Raises:
            FlashError: the range falls outside the object.
        """
        extent = self.get_extent(key)
        if offset < 0 or offset + len(data) > extent.size:
            raise FlashError(
                f"update [{offset}, {offset + len(data)}) outside object of "
                f"{extent.size} bytes"
            )
        if not data:
            return ArrayIoResult()
        by_id = self._devices_by_id
        batch = _IoBatch(self.clock.now, op="update")
        position = 0
        for stripe in extent.stripes:
            stripe_end = position + stripe.payload_bytes
            if stripe_end > offset and position < offset + len(data):
                self._update_stripe(stripe, batch, by_id, position, offset, data)
            position = stripe_end
        return self._finish(batch)

    def _update_stripe(
        self,
        stripe: StripeDescriptor,
        batch: _IoBatch,
        by_id: Dict[int, FlashDevice],
        stripe_start: int,
        offset: int,
        data: bytes,
    ) -> None:
        local_start = max(0, offset - stripe_start)
        local_end = min(stripe.payload_bytes, offset + len(data) - stripe_start)
        chunks_by_index = {chunk.fragment_index: chunk for chunk in stripe.chunks}

        if stripe.replicated:
            # One logical fragment replicated everywhere: read any healthy
            # copy, patch, push the new content to every replica.
            source = chunks_by_index[min(chunks_by_index)]
            old = batch.read(by_id[source.device_id], source.address)
            patched = bytearray(old)
            patched[local_start:local_end] = data[
                stripe_start + local_start - offset : stripe_start + local_end - offset
            ]
            for chunk in stripe.chunks:
                batch.write(by_id[chunk.device_id], chunk.address, bytes(patched))
            return

        k = stripe.data_count
        chunk_length = chunks_by_index[0].length
        first = local_start // chunk_length
        last = (local_end - 1) // chunk_length
        updated = list(range(first, last + 1))
        codec = self._codec(k, stripe.parity_count)
        plan = codec.plan_update(len(updated)) if stripe.parity_count else None

        # The updated fragments are always read (read-modify-write).
        old_fragments: Dict[int, bytes] = {}
        new_fragments: Dict[int, bytes] = {}
        for index in updated:
            chunk = chunks_by_index[index]
            old = batch.read(by_id[chunk.device_id], chunk.address)
            patched = bytearray(old)
            frag_start = index * chunk_length
            lo = max(local_start, frag_start)
            hi = min(local_end, frag_start + chunk_length)
            patched[lo - frag_start : hi - frag_start] = data[
                stripe_start + lo - offset : stripe_start + hi - offset
            ]
            old_fragments[index] = old
            new_fragments[index] = bytes(patched)

        if plan is None:
            parity_payloads: List[bytes] = []
        elif plan.method == "delta":
            parity_payloads = [
                batch.read(by_id[chunks_by_index[k + row].device_id],
                           chunks_by_index[k + row].address)
                for row in range(stripe.parity_count)
            ]
            for index in updated:
                parity_payloads = codec.delta_update(
                    parity_payloads, index, old_fragments[index], new_fragments[index]
                )
        else:
            full = {}
            for index in range(k):
                if index in new_fragments:
                    full[index] = new_fragments[index]
                else:
                    chunk = chunks_by_index[index]
                    full[index] = batch.read(by_id[chunk.device_id], chunk.address)
            parity_payloads = codec.encode([full[index] for index in range(k)])

        for index in updated:
            chunk = chunks_by_index[index]
            batch.write(by_id[chunk.device_id], chunk.address, new_fragments[index])
        for row, payload in enumerate(parity_payloads):
            chunk = chunks_by_index[k + row]
            batch.write(by_id[chunk.device_id], chunk.address, payload)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete_object(self, key: ObjectKey) -> ArrayIoResult:
        """Remove an object's chunks (from online devices) and metadata."""
        extent = self.get_extent(key)
        by_id = self._devices_by_id
        for stripe in extent.stripes:
            for chunk in stripe.chunks:
                device = by_id[chunk.device_id]
                if device.has_chunk(chunk.address):
                    device.delete_chunk(chunk.address)
        del self._objects[key]
        self._unregister_stripes(extent)
        self._logical_bytes -= extent.size
        self._data_bytes -= extent.data_bytes
        self._redundancy_bytes -= extent.redundancy_bytes
        # Deletes are metadata-only (TRIM); no simulated time billed.
        return ArrayIoResult()

    # ------------------------------------------------------------------
    # Health and failure lifecycle
    # ------------------------------------------------------------------
    def fail_device(self, device_id: int) -> None:
        """Shoot down a device; resident chunks become unreadable."""
        self.devices[device_id].fail()

    def replace_device(self, device_id: int) -> None:
        """Insert a fresh spare into a failed slot."""
        device = self.devices[device_id]
        if device.is_online:
            raise DeviceFailedError(device_id, f"device {device_id} is not failed")
        device.replace()

    def object_health(self, key: ObjectKey) -> ObjectHealth:
        """Classify an object as healthy, degraded-but-recoverable, or lost."""
        extent = self.get_extent(key)
        by_id = self._devices_by_id
        health = ObjectHealth.HEALTHY
        for stripe in extent.stripes:
            present = [
                chunk
                for chunk in stripe.chunks
                if by_id[chunk.device_id].has_chunk(chunk.address)
            ]
            if len(present) == len(stripe.chunks):
                continue
            if stripe.replicated:
                recoverable = bool(present)
            else:
                recoverable = len(present) >= stripe.data_count
            if not recoverable:
                return ObjectHealth.LOST
            health = ObjectHealth.DEGRADED
        return health

    def is_readable(self, key: ObjectKey) -> bool:
        return self.object_health(key) is not ObjectHealth.LOST

    def triage_object(self, key: ObjectKey) -> Tuple[List[ChunkLocation], ObjectHealth]:
        """Missing chunks and health in one stripe walk.

        The recovery scan needs both; calling :meth:`missing_chunks` and
        :meth:`object_health` separately walks every stripe twice. A LOST
        verdict returns immediately (the missing list may then be partial —
        a lost object is purged, not rebuilt).
        """
        extent = self.get_extent(key)
        by_id = self._devices_by_id
        missing: List[ChunkLocation] = []
        health = ObjectHealth.HEALTHY
        for stripe in extent.stripes:
            present = 0
            for chunk in stripe.chunks:
                if by_id[chunk.device_id].has_chunk(chunk.address):
                    present += 1
                else:
                    missing.append(chunk)
            if present == len(stripe.chunks):
                continue
            if stripe.replicated:
                recoverable = present > 0
            else:
                recoverable = present >= stripe.data_count
            if not recoverable:
                return missing, ObjectHealth.LOST
            health = ObjectHealth.DEGRADED
        return missing, health

    # ------------------------------------------------------------------
    # Rebuild (recovery onto a replacement spare)
    # ------------------------------------------------------------------
    def missing_chunks(self, key: ObjectKey) -> List[ChunkLocation]:
        """Chunks of this object absent from their (online) home device."""
        extent = self.get_extent(key)
        by_id = self._devices_by_id
        return [
            chunk
            for stripe in extent.stripes
            for chunk in stripe.chunks
            if not by_id[chunk.device_id].has_chunk(chunk.address)
        ]

    def rebuild_object(self, key: ObjectKey) -> ArrayIoResult:
        """Reconstruct the object's missing fragments onto online devices.

        Fragments whose home device is still failed are skipped (there is
        nowhere to put them until a spare arrives).

        Raises:
            UnrecoverableDataError: a stripe cannot be decoded.
        """
        extent = self.get_extent(key)
        by_id = self._devices_by_id
        batch = _IoBatch(self.clock.now, op="rebuild")
        for stripe in extent.stripes:
            available: Dict[int, ChunkLocation] = {}
            missing: List[ChunkLocation] = []
            for chunk in stripe.chunks:
                device = by_id[chunk.device_id]
                if device.has_chunk(chunk.address):
                    available[chunk.fragment_index] = chunk
                elif device.is_online:
                    missing.append(chunk)
            if not missing:
                continue
            if stripe.replicated:
                payload = None
                for index in self._fragment_order(available, by_id):
                    source = available[index]
                    payload = self._read_fragment(batch, by_id, source)
                    if payload is not None:
                        break
                if payload is None:
                    raise UnrecoverableDataError(
                        f"stripe {stripe.stripe_id}: all replicas lost or corrupted"
                    )
                for chunk in missing:
                    batch.write(by_id[chunk.device_id], chunk.address, payload)
                continue
            k = stripe.data_count
            fragments: Dict[int, bytes] = {}
            for index in self._fragment_order(available, by_id):
                if len(fragments) == k:
                    break
                payload = self._read_fragment(batch, by_id, available[index])
                if payload is not None:
                    fragments[index] = payload
            if len(fragments) < k:
                raise UnrecoverableDataError(
                    f"stripe {stripe.stripe_id}: {len(fragments)} readable fragments, "
                    f"{k} needed"
                )
            codec = self._codec(k, stripe.parity_count)
            rebuilt = codec.reconstruct_arrays(
                fragments, [chunk.fragment_index for chunk in missing]
            )
            for chunk in missing:
                batch.write(
                    by_id[chunk.device_id],
                    chunk.address,
                    rebuilt[chunk.fragment_index].tobytes(),
                )
        result = self._finish(batch)
        result.degraded = True
        return result

    # ------------------------------------------------------------------
    # Scrubbing (silent-corruption repair)
    # ------------------------------------------------------------------
    def scrub(self, keys: Optional[Iterable[ObjectKey]] = None) -> "ScrubReport":
        """Verify checksums and repair silent corruption in place.

        Walks every stored chunk of the given ``keys`` (default: every
        object — a full sweep). Corrupted fragments are regenerated from the
        healthy fragments of their stripe (replica copy or Reed-Solomon
        reconstruction) and rewritten in place. Objects whose stripes have
        too few healthy fragments are reported as unrecoverable and left
        untouched (the cache layer purges them on access).

        Passing ``keys`` makes incremental, prioritized scrubbing possible:
        the scrub scheduler feeds class-ordered batches (and jumps objects
        with recorded corrupt chunks to the front) so a sweep can run in
        idle gaps instead of monopolizing the array.
        """
        report = ScrubReport()
        by_id = self._devices_by_id
        batch = _IoBatch(self.clock.now, op="scrub")
        if keys is None:
            targets = list(self._objects.items())
        else:
            targets = [
                (key, self._objects[key]) for key in keys if key in self._objects
            ]
        for key, extent in targets:
            self._scrub_extent(key, extent, batch, by_id, report)
        report.io = self._finish(batch)
        return report

    def scrub_object(self, key: ObjectKey) -> "ScrubReport":
        """Scrub a single object (see :meth:`scrub`)."""
        return self.scrub([key])

    def _scrub_extent(
        self,
        key: ObjectKey,
        extent: ObjectExtent,
        batch: _IoBatch,
        by_id: Dict[int, FlashDevice],
        report: "ScrubReport",
    ) -> None:
        report.objects_checked += 1
        object_ok = True
        for stripe in extent.stripes:
            good: Dict[int, bytes] = {}
            bad: List[ChunkLocation] = []
            for chunk in stripe.chunks:
                device = by_id[chunk.device_id]
                if not device.has_chunk(chunk.address):
                    continue
                report.chunks_checked += 1
                payload = self._read_fragment(batch, by_id, chunk)
                if payload is None:
                    bad.append(chunk)
                else:
                    good[chunk.fragment_index] = payload
            if not bad:
                continue
            if stripe.replicated:
                if not good:
                    object_ok = False
                    continue
                replacement = next(iter(good.values()))
                for chunk in bad:
                    batch.write(by_id[chunk.device_id], chunk.address, replacement)
                    report.chunks_repaired += 1
                continue
            k = stripe.data_count
            if len(good) < k:
                object_ok = False
                continue
            codec = self._codec(k, stripe.parity_count)
            rebuilt = codec.reconstruct(
                dict(list(good.items())[:k]),
                [chunk.fragment_index for chunk in bad],
            )
            for chunk in bad:
                batch.write(
                    by_id[chunk.device_id], chunk.address, rebuilt[chunk.fragment_index]
                )
                report.chunks_repaired += 1
        if not object_ok:
            report.unrecoverable_objects.append(key)

    def owner_of_stripe(self, stripe_id: int) -> Optional[ObjectKey]:
        """The object a stripe belongs to, or None for a retired stripe."""
        return self._stripe_owners.get(stripe_id)

    def corrupt_object_keys(self) -> List[ObjectKey]:
        """Owners of every chunk currently flagged corrupt on some device.

        Fed by the devices' ``corrupt_chunks`` sets (recorded on checksum
        mismatch), this is the targeted-scrub worklist: repair exactly what
        reads have tripped over, without a full sweep. Deterministic order
        (device id, then address) so campaigns replay identically.
        """
        keys: List[ObjectKey] = []
        seen = set()
        for device in self.devices:
            for address in sorted(device.corrupt_chunks):
                key = self._stripe_owners.get(address[0])
                if key is not None and key not in seen:
                    seen.add(key)
                    keys.append(key)
        return keys

    def restripe_object(self, key: ObjectKey, scheme: Optional[RedundancyScheme] = None) -> ArrayIoResult:
        """Re-lay an object across the *currently online* devices.

        Used by recovery when no spare is available: a degraded object is
        read (decoding around failures) and rewritten over the surviving
        devices, recreating fresh redundancy there — the paper's
        "additional data redundancy" effect of prioritized recovery.

        Args:
            scheme: redundancy scheme for the new layout; defaults to the
                object's current scheme.

        Raises:
            UnrecoverableDataError: the object cannot be decoded.
        """
        extent = self.get_extent(key)
        scheme = scheme or extent.scheme
        payload, read_io = self.read_object(key)
        write_io = self.write_object(key, payload, scheme, overwrite=True)
        read_io.merge(write_io)
        read_io.degraded = True
        return read_io

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _codec(self, k: int, m: int) -> RSCodec:
        try:
            return self._codecs[(k, m)]
        except KeyError:
            codec = RSCodec(k, m)
            self._codecs[(k, m)] = codec
            return codec

    def decoder_cache_stats(self) -> Dict[str, int]:
        """Aggregate decoder-matrix cache counters across all codecs.

        Codecs are shared per ``(k, m)`` geometry, so every degraded read
        and rebuild that sees the same survivor pattern reuses one inverted
        matrix; these counters make that observable (tests, recovery).
        """
        hits = misses = entries = 0
        for codec in self._codecs.values():
            info = codec.decoder_cache_info()
            hits += info.hits
            misses += info.misses
            entries += info.size
        return {"hits": hits, "misses": misses, "entries": entries}

    def __repr__(self) -> str:
        return (
            f"FlashArray(devices={self.width}, online={self.online_count}, "
            f"objects={len(self._objects)}, chunk_size={self.chunk_size})"
        )
