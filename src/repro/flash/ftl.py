"""A page-mapped flash translation layer (FTL).

The paper's whole motivation is flash physics: cells wear out after
1,000-5,000 program/erase cycles (§I), and the device-level behaviours that
follow — erase-before-write, garbage collection, write amplification,
wear imbalance — are what make flash reliability a live concern. This module
simulates those mechanics at page/block granularity:

- logical pages map to physical ``(block, page)`` slots;
- overwrites invalidate the old slot and program a new one (no in-place
  update);
- when free blocks run low, greedy garbage collection picks the block with
  the fewest valid pages, relocates them, and erases it;
- per-block erase counters expose wear, its imbalance, and the write
  amplification factor (NAND writes / host writes).

The FTL is attached to a :class:`~repro.flash.device.FlashDevice` as an
optional accounting layer: chunk writes and deletes drive page traffic, and
the endurance benchmarks read the resulting statistics. It deliberately does
not add latency to the calibrated experiment profiles (GC stalls can be
modelled by billing :attr:`FtlStats.gc_page_moves`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import FlashError
from repro.units import KiB

__all__ = ["FtlConfig", "FtlStats", "PageMappedFtl"]


@dataclass(frozen=True)
class FtlConfig:
    """Geometry and policy of one device's FTL."""

    page_size: int = 4 * KiB
    pages_per_block: int = 64
    num_blocks: int = 256
    #: GC starts when free blocks drop to this many.
    gc_low_watermark: int = 2
    #: P/E cycles a block endures before it is retired (paper: 1,000-5,000).
    endurance_cycles: int = 3_000

    def __post_init__(self) -> None:
        if self.page_size < 1 or self.pages_per_block < 1 or self.num_blocks < 2:
            raise FlashError("FTL geometry must have pages and >= 2 blocks")
        if not 1 <= self.gc_low_watermark < self.num_blocks:
            raise FlashError("GC watermark must be in [1, num_blocks)")

    @property
    def capacity_pages(self) -> int:
        return self.pages_per_block * self.num_blocks


@dataclass
class FtlStats:
    """Cumulative FTL counters."""

    host_pages_written: int = 0
    nand_pages_written: int = 0
    gc_runs: int = 0
    gc_page_moves: int = 0
    blocks_erased: int = 0

    @property
    def write_amplification(self) -> float:
        """NAND page programs per host page write (>= 1)."""
        if self.host_pages_written == 0:
            return 1.0
        return self.nand_pages_written / self.host_pages_written


class PageMappedFtl:
    """Greedy-GC page-mapped FTL over abstract logical page numbers."""

    def __init__(self, config: Optional[FtlConfig] = None) -> None:
        self.config = config or FtlConfig()
        #: logical page -> (block, page)
        self._map: Dict[Hashable, Tuple[int, int]] = {}
        #: per-block: list of lpn-or-None per page slot (None = invalid/free)
        self._blocks: List[List[Optional[Hashable]]] = [
            [] for _ in range(self.config.num_blocks)
        ]
        self._valid_counts = [0] * self.config.num_blocks
        self._erase_counts = [0] * self.config.num_blocks
        self._free_blocks: Set[int] = set(range(1, self.config.num_blocks))
        self._retired: Set[int] = set()
        self._active_block = 0
        self._in_gc = False
        self.stats = FtlStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mapped_pages(self) -> int:
        return len(self._map)

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    @property
    def erase_counts(self) -> List[int]:
        return list(self._erase_counts)

    @property
    def max_erase_count(self) -> int:
        return max(self._erase_counts)

    @property
    def wear_spread(self) -> int:
        """Difference between the most- and least-worn live blocks."""
        live = [
            count
            for block, count in enumerate(self._erase_counts)
            if block not in self._retired
        ]
        return max(live) - min(live) if live else 0

    @property
    def retired_blocks(self) -> int:
        return len(self._retired)

    @property
    def is_worn_out(self) -> bool:
        """True when so many blocks retired that GC can no longer run."""
        usable = self.config.num_blocks - len(self._retired)
        return usable <= self.config.gc_low_watermark + 1

    def pages_for(self, num_bytes: int) -> int:
        return max(1, math.ceil(num_bytes / self.config.page_size))

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def write(self, lpn: Hashable) -> None:
        """Program one logical page (overwrites invalidate the old slot)."""
        self.stats.host_pages_written += 1
        self._invalidate(lpn)
        self._program(lpn, host=True)

    def write_extent(self, key: Hashable, num_bytes: int) -> int:
        """Write an extent's pages as ``(key, index)`` lpns; returns pages."""
        pages = self.pages_for(num_bytes)
        for index in range(pages):
            self.write((key, index))
        return pages

    def trim(self, lpn: Hashable) -> None:
        """Drop a logical page (TRIM)."""
        self._invalidate(lpn)
        self._map.pop(lpn, None)

    def trim_extent(self, key: Hashable, num_bytes: int) -> None:
        for index in range(self.pages_for(num_bytes)):
            self.trim((key, index))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate(self, lpn: Hashable) -> None:
        location = self._map.get(lpn)
        if location is None:
            return
        block, page = location
        self._blocks[block][page] = None
        self._valid_counts[block] -= 1

    def _program(self, lpn: Hashable, host: bool) -> None:
        if len(self._blocks[self._active_block]) >= self.config.pages_per_block:
            self._advance_active_block()
        block = self._active_block
        page = len(self._blocks[block])
        self._blocks[block].append(lpn)
        self._valid_counts[block] += 1
        self._map[lpn] = (block, page)
        self.stats.nand_pages_written += 1

    def _advance_active_block(self) -> None:
        if self._in_gc:
            # GC relocations must not recurse into GC; the watermark
            # guarantees a spare block for them.
            if not self._free_blocks:
                raise FlashError("FTL watermark violated during GC relocation")
            self._active_block = self._free_blocks.pop()
            return
        if not self._free_blocks and not self._collect_garbage():
            raise FlashError("FTL out of free blocks (device worn out or overfull)")
        self._active_block = self._free_blocks.pop()
        while len(self._free_blocks) < self.config.gc_low_watermark:
            if not self._collect_garbage():
                break

    def _collect_garbage(self) -> bool:
        """Greedy GC: erase the non-free block with the fewest valid pages.

        Returns False when no block can be reclaimed (every candidate is
        full of valid data — the device is logically full).
        """
        candidates = [
            block
            for block in range(self.config.num_blocks)
            if block not in self._free_blocks
            and block not in self._retired
            and block != self._active_block
            and len(self._blocks[block]) >= self.config.pages_per_block
        ]
        if not candidates:
            return False
        victim = min(candidates, key=lambda block: self._valid_counts[block])
        if self._valid_counts[victim] >= self.config.pages_per_block:
            return False  # nothing reclaimable anywhere
        survivors = [lpn for lpn in self._blocks[victim] if lpn is not None]
        self._blocks[victim] = []
        self._valid_counts[victim] = 0
        self._erase_counts[victim] += 1
        self.stats.gc_runs += 1
        self.stats.blocks_erased += 1
        if self._erase_counts[victim] >= self.config.endurance_cycles:
            self._retired.add(victim)
        else:
            self._free_blocks.add(victim)
        self._in_gc = True
        try:
            for lpn in survivors:
                # Relocations program pages without host writes: amplification.
                self.stats.gc_page_moves += 1
                self._program(lpn, host=False)
        finally:
            self._in_gc = False
        return True

    def __repr__(self) -> str:
        return (
            f"PageMappedFtl(mapped={self.mapped_pages}, free_blocks="
            f"{self.free_block_count}, WA={self.stats.write_amplification:.2f})"
        )
