"""Service-time models for simulated storage devices.

A device operation costs a fixed per-operation overhead (command processing,
flash translation layer, or seek + rotation for disks) plus a transfer term
proportional to the payload size. The presets are calibrated to the hardware
the paper's testbed used: Intel 540s SATA SSDs, a 7,200 RPM Western Digital
hard drive, and a 10 Gbps Ethernet hop. Absolute values only need to be
plausible — the reproduced *shapes* come from their ratios (flash is ~2
orders of magnitude quicker to first byte than the backend path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MB, MICROSECOND, MILLISECOND

__all__ = [
    "ServiceTimeModel",
    "INTEL_540S_SSD",
    "HDD_7200RPM",
    "NETWORK_10GBE",
    "ZERO_COST",
]


@dataclass(frozen=True)
class ServiceTimeModel:
    """Latency model: ``time = overhead + bytes / bandwidth``.

    Attributes:
        read_overhead: fixed seconds added to every read operation.
        write_overhead: fixed seconds added to every write operation.
        read_bandwidth: sustained read throughput in bytes/second.
        write_bandwidth: sustained write throughput in bytes/second.
    """

    read_overhead: float
    write_overhead: float
    read_bandwidth: float
    write_bandwidth: float

    #: Bound on the per-size memo tables below. Real workloads use a
    #: handful of distinct chunk sizes; the cap only matters for
    #: adversarial size mixes.
    _MEMO_LIMIT = 4096

    def __post_init__(self) -> None:
        if self.read_overhead < 0 or self.write_overhead < 0:
            raise ValueError("overheads must be non-negative")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        # Per-size service-time memos (zero-cost billing fast path): the
        # hot I/O loop asks for the same few chunk sizes millions of
        # times, so the arithmetic is computed once per distinct size.
        # Installed via object.__setattr__ because the dataclass is
        # frozen; not fields, so eq/hash/repr are untouched.
        object.__setattr__(self, "_read_memo", {})
        object.__setattr__(self, "_write_memo", {})

    def read_time(self, num_bytes: int) -> float:
        """Service time for reading ``num_bytes``."""
        memo = self._read_memo
        cached = memo.get(num_bytes)
        if cached is None:
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            cached = self.read_overhead + num_bytes / self.read_bandwidth
            memo[num_bytes] = cached
        return cached

    def write_time(self, num_bytes: int) -> float:
        """Service time for writing ``num_bytes``."""
        memo = self._write_memo
        cached = memo.get(num_bytes)
        if cached is None:
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            cached = self.write_overhead + num_bytes / self.write_bandwidth
            memo[num_bytes] = cached
        return cached

    def combine(self, other: "ServiceTimeModel") -> "ServiceTimeModel":
        """Stack two models in series (e.g. network hop + device)."""
        return ServiceTimeModel(
            read_overhead=self.read_overhead + other.read_overhead,
            write_overhead=self.write_overhead + other.write_overhead,
            read_bandwidth=min(self.read_bandwidth, other.read_bandwidth),
            write_bandwidth=min(self.write_bandwidth, other.write_bandwidth),
        )

    def scaled(self, multiplier: float) -> "ServiceTimeModel":
        """This model slowed down uniformly by ``multiplier``.

        Overheads grow and bandwidths shrink by the same factor, so every
        operation takes ``multiplier`` times longer regardless of size — the
        service-time shape of a fail-slow device
        (:class:`repro.faults.FailSlow`).
        """
        if multiplier <= 0:
            raise ValueError("slowdown multiplier must be positive")
        return ServiceTimeModel(
            read_overhead=self.read_overhead * multiplier,
            write_overhead=self.write_overhead * multiplier,
            read_bandwidth=self.read_bandwidth / multiplier,
            write_bandwidth=self.write_bandwidth / multiplier,
        )


#: SATA SSD comparable to the testbed's Intel 540s (560/480 MB/s seq, ~80 us op).
INTEL_540S_SSD = ServiceTimeModel(
    read_overhead=80 * MICROSECOND,
    write_overhead=100 * MICROSECOND,
    read_bandwidth=560 * MB,
    write_bandwidth=480 * MB,
)

#: 7,200 RPM hard drive: ~8 ms average positioning, ~150 MB/s streaming.
HDD_7200RPM = ServiceTimeModel(
    read_overhead=8 * MILLISECOND,
    write_overhead=9 * MILLISECOND,
    read_bandwidth=150 * MB,
    write_bandwidth=140 * MB,
)

#: One 10 GbE hop: ~100 us RTT contribution, 1.25 GB/s line rate.
NETWORK_10GBE = ServiceTimeModel(
    read_overhead=100 * MICROSECOND,
    write_overhead=100 * MICROSECOND,
    read_bandwidth=1250 * MB,
    write_bandwidth=1250 * MB,
)

#: Free I/O, for unit tests that assert on logic rather than timing.
ZERO_COST = ServiceTimeModel(
    read_overhead=0.0,
    write_overhead=0.0,
    read_bandwidth=float("inf"),
    write_bandwidth=float("inf"),
)
