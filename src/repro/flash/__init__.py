"""Simulated flash-SSD array substrate.

This package stands in for the paper's five-device Intel 540s array
(DESIGN.md §2). It stores *real bytes* in simulated devices, lays objects out
in RAID-like stripes with a per-object redundancy scheme (variable parity
count, rotated parity placement, or full replication — paper §IV-C.3), and
accounts simulated service time through a calibrated latency model.
"""

from repro.flash.array import ArrayIoResult, FlashArray, ObjectHealth, ScrubReport
from repro.flash.device import DeviceState, FlashDevice
from repro.flash.ftl import FtlConfig, FtlStats, PageMappedFtl
from repro.flash.latency import (
    HDD_7200RPM,
    INTEL_540S_SSD,
    NETWORK_10GBE,
    ServiceTimeModel,
)
from repro.flash.stripe import (
    ChunkKind,
    ChunkLocation,
    ParityScheme,
    RedundancyScheme,
    ReplicationScheme,
    StripeDescriptor,
)

__all__ = [
    "ArrayIoResult",
    "ChunkKind",
    "ChunkLocation",
    "DeviceState",
    "FlashArray",
    "FlashDevice",
    "FtlConfig",
    "FtlStats",
    "HDD_7200RPM",
    "PageMappedFtl",
    "INTEL_540S_SSD",
    "NETWORK_10GBE",
    "ObjectHealth",
    "ParityScheme",
    "RedundancyScheme",
    "ReplicationScheme",
    "ScrubReport",
    "ServiceTimeModel",
    "StripeDescriptor",
]
