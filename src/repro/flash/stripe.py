"""Stripe geometry and redundancy schemes.

The array manages data in *stripes* (paper §IV-C.3, Fig. 4): each stripe
spans the online devices, one chunk per device. A chunk is a data chunk, a
parity chunk (Reed-Solomon coded from the data chunks of the same stripe), or
a replica chunk (an identical copy of the data chunk, for the replication
scheme applied to metadata and dirty objects). Parity chunks rotate across
devices round-robin by stripe id for an even distribution.

Unlike RAID, the number of parity chunks per stripe is *variable* — that is
exactly the mechanism differentiated redundancy is built from. The scheme
vocabulary:

- :class:`ParityScheme` — ``m`` parity chunks per stripe (``m = 0`` means no
  redundancy, the paper's "0-parity");
- :class:`ReplicationScheme` — every chunk replicated across the stripe
  ("full replication"), or to a fixed number of copies.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import StripeLayoutError

__all__ = [
    "ChunkKind",
    "ChunkLocation",
    "FragmentSlot",
    "ParityScheme",
    "RedundancyScheme",
    "ReplicationScheme",
    "StripeDescriptor",
    "pack_fragments",
]


class ChunkKind(enum.Enum):
    """Role of a chunk within its stripe."""

    DATA = "data"
    PARITY = "parity"
    REPLICA = "replica"


@dataclass(frozen=True)
class FragmentSlot:
    """One slot of a stripe plan: which device gets which fragment."""

    device_id: int
    fragment_index: int
    kind: ChunkKind


@dataclass(frozen=True)
class ChunkLocation:
    """A placed chunk: stripe, fragment, device, role, and size."""

    stripe_id: int
    fragment_index: int
    device_id: int
    kind: ChunkKind
    length: int

    @property
    def address(self) -> Tuple[int, int]:
        """The on-device address, ``(stripe_id, fragment_index)``."""
        return (self.stripe_id, self.fragment_index)


@dataclass(frozen=True)
class StripeDescriptor:
    """Metadata for one stripe of an object."""

    stripe_id: int
    payload_bytes: int
    data_count: int
    parity_count: int
    chunks: Tuple[ChunkLocation, ...]
    #: True when the stripe is replica-based rather than parity-based.
    replicated: bool = False

    @property
    def width(self) -> int:
        return len(self.chunks)

    def data_chunks(self) -> List[ChunkLocation]:
        return [chunk for chunk in self.chunks if chunk.kind is ChunkKind.DATA]

    def redundant_chunks(self) -> List[ChunkLocation]:
        return [chunk for chunk in self.chunks if chunk.kind is not ChunkKind.DATA]


class RedundancyScheme:
    """Base class for per-object redundancy schemes.

    A scheme is a *policy value*: immutable, comparable, and resolved against
    the current array width only when a stripe is actually laid out.
    """

    name: str = "abstract"

    def data_chunks_per_stripe(self, width: int) -> int:
        """Number of payload-carrying chunks in a stripe of ``width`` slots."""
        raise NotImplementedError

    def tolerable_failures(self, width: int) -> int:
        """How many device losses a stripe of this width survives."""
        raise NotImplementedError

    def storage_multiplier(self, width: int) -> float:
        """Stored bytes per logical byte, ignoring padding."""
        raise NotImplementedError

    def plan(self, devices: Sequence[int], rotation: int) -> List[FragmentSlot]:
        """Assign fragment roles to device slots for one stripe.

        Placement repeats every ``width`` stripes, so only ``width``
        distinct layouts exist per device set — the hot write path asks
        for one per stripe, and the memoized table answers from cache.

        Args:
            devices: ids of the online devices the stripe will span.
            rotation: stripe sequence number, used to rotate parity/primary
                placement round-robin.
        """
        width = len(devices)
        self.validate(width)
        return list(
            _cached_plan(self, tuple(devices), self._plan_rotation(width, rotation))
        )

    def _plan_rotation(self, width: int, rotation: int) -> int:
        """Normalize a stripe id to the scheme's placement period."""
        return rotation % width

    def _plan_slots(
        self, devices: Tuple[int, ...], rotation: int
    ) -> List[FragmentSlot]:
        """Build one stripe layout (uncached; ``rotation`` pre-normalized)."""
        raise NotImplementedError

    def validate(self, width: int) -> None:
        """Raise :class:`StripeLayoutError` if the scheme cannot fit."""
        raise NotImplementedError


@dataclass(frozen=True)
class ParityScheme(RedundancyScheme):
    """``m`` Reed-Solomon parity chunks per stripe (``m = 0`` → no redundancy).

    ``rotate=False`` pins the parity chunks to the first devices (a
    RAID-4-like layout) instead of the paper's round-robin distribution —
    used by the wear ablation to show why §IV-C.3 rotates parity.
    """

    parity: int
    rotate: bool = True

    def __post_init__(self) -> None:
        if self.parity < 0:
            raise StripeLayoutError("parity count cannot be negative")

    @property
    def name(self) -> str:
        return f"{self.parity}-parity"

    def data_chunks_per_stripe(self, width: int) -> int:
        self.validate(width)
        return width - self.parity

    def tolerable_failures(self, width: int) -> int:
        return self.parity

    def storage_multiplier(self, width: int) -> float:
        self.validate(width)
        return width / (width - self.parity)

    def validate(self, width: int) -> None:
        if width < 1:
            raise StripeLayoutError("stripe width must be at least 1")
        if self.parity >= width:
            raise StripeLayoutError(
                f"{self.parity} parity chunks need a stripe wider than {width}"
            )

    def _plan_rotation(self, width: int, rotation: int) -> int:
        return rotation % width if self.rotate else 0

    def _plan_slots(
        self, devices: Tuple[int, ...], rotation: int
    ) -> List[FragmentSlot]:
        width = len(devices)
        k = width - self.parity
        parity_slots = {(rotation + j) % width for j in range(self.parity)}
        slots: List[FragmentSlot] = []
        data_index = 0
        parity_index = 0
        for slot, device_id in enumerate(devices):
            if slot in parity_slots:
                slots.append(FragmentSlot(device_id, k + parity_index, ChunkKind.PARITY))
                parity_index += 1
            else:
                slots.append(FragmentSlot(device_id, data_index, ChunkKind.DATA))
                data_index += 1
        return slots


@dataclass(frozen=True)
class ReplicationScheme(RedundancyScheme):
    """Replicate each chunk; ``copies=None`` means across the whole stripe."""

    copies: "int | None" = None

    def __post_init__(self) -> None:
        if self.copies is not None and self.copies < 1:
            raise StripeLayoutError("replication needs at least one copy")

    @property
    def name(self) -> str:
        return "full-replication" if self.copies is None else f"{self.copies}-replication"

    def resolved_copies(self, width: int) -> int:
        return width if self.copies is None else min(self.copies, width)

    def data_chunks_per_stripe(self, width: int) -> int:
        self.validate(width)
        return 1

    def tolerable_failures(self, width: int) -> int:
        return self.resolved_copies(width) - 1

    def storage_multiplier(self, width: int) -> float:
        self.validate(width)
        return float(self.resolved_copies(width))

    def validate(self, width: int) -> None:
        if width < 1:
            raise StripeLayoutError("stripe width must be at least 1")

    def _plan_slots(
        self, devices: Tuple[int, ...], rotation: int
    ) -> List[FragmentSlot]:
        width = len(devices)
        copies = self.resolved_copies(width)
        primary_slot = rotation % width
        slots: List[FragmentSlot] = [
            FragmentSlot(devices[primary_slot], 0, ChunkKind.DATA)
        ]
        for offset in range(1, copies):
            slot = (primary_slot + offset) % width
            slots.append(FragmentSlot(devices[slot], offset, ChunkKind.REPLICA))
        return slots


@functools.lru_cache(maxsize=4096)
def _cached_plan(
    scheme: RedundancyScheme, devices: Tuple[int, ...], rotation: int
) -> Tuple[FragmentSlot, ...]:
    """Memoized stripe layouts: schemes and slots are frozen, so sharing
    the table across calls is safe."""
    return tuple(scheme._plan_slots(devices, rotation))


def pack_fragments(raw: bytes, count: int, chunk_length: int) -> np.ndarray:
    """Cut a stripe payload into a ``(count, chunk_length)`` uint8 stack.

    The tail is zero-padded. This is the shape the erasure kernel's fused
    matvec consumes directly, so the write path encodes a whole stripe with
    no per-fragment slicing or re-wrapping; row ``i`` of the result is the
    payload of fragment ``i`` (``stack[i].tobytes()`` when storing).
    """
    if count < 1:
        raise StripeLayoutError("need at least one fragment per stripe")
    if chunk_length < 1:
        raise StripeLayoutError("chunk length must be at least one byte")
    total = count * chunk_length
    if len(raw) > total:
        raise StripeLayoutError(
            f"{len(raw)} payload bytes exceed stripe capacity {total}"
        )
    stack = np.zeros(total, dtype=np.uint8)
    stack[: len(raw)] = np.frombuffer(raw, dtype=np.uint8)
    return stack.reshape(count, chunk_length)


def split_payload(
    payload_size: int, chunk_size: int, data_per_stripe: int
) -> List[Tuple[int, int]]:
    """Plan stripes for a payload: returns ``(stripe_payload, chunk_length)``.

    Full stripes use ``chunk_size`` chunks; the final partial stripe uses
    equal-size chunks of ``ceil(remaining / k)`` bytes so padding stays below
    ``k`` bytes (Reed-Solomon needs equal-size fragments).
    """
    if chunk_size < 1:
        raise StripeLayoutError("chunk size must be at least one byte")
    if data_per_stripe < 1:
        raise StripeLayoutError("need at least one data chunk per stripe")
    full_stripe_payload = chunk_size * data_per_stripe
    plan: List[Tuple[int, int]] = []
    remaining = payload_size
    while remaining > 0:
        if remaining >= full_stripe_payload:
            plan.append((full_stripe_payload, chunk_size))
            remaining -= full_stripe_payload
        else:
            chunk_length = max(1, math.ceil(remaining / data_per_stripe))
            plan.append((remaining, chunk_length))
            remaining = 0
    return plan
