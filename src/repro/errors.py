"""Exception hierarchy for the ``repro`` library.

Every exception raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.

The hierarchy mirrors the subsystem layout:

- :class:`ErasureError` — Reed-Solomon / GF(256) failures.
- :class:`FlashError` — simulated flash device and array failures.
- :class:`OsdError` — object-storage command and protocol failures.
- :class:`CacheError` — cache-manager misuse.
- :class:`WorkloadError` — workload generation / trace parsing failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ErasureError",
    "UnrecoverableDataError",
    "FlashError",
    "DeviceFailedError",
    "DeviceFullError",
    "ChunkMissingError",
    "ChunkCorruptedError",
    "TransientIoError",
    "StripeLayoutError",
    "FaultPlanError",
    "OsdError",
    "WireError",
    "ObjectNotFoundError",
    "ObjectExistsError",
    "ObjectCorruptedError",
    "ControlMessageError",
    "CacheError",
    "CacheFullError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ErasureError(ReproError):
    """Base class for erasure-coding errors."""


class UnrecoverableDataError(ErasureError):
    """Raised when more fragments are lost than the code can tolerate."""


class FlashError(ReproError):
    """Base class for simulated-flash errors."""


class DeviceFailedError(FlashError):
    """Raised when I/O is attempted against a failed device."""

    def __init__(self, device_id: int, message: str = "") -> None:
        self.device_id = device_id
        super().__init__(message or f"device {device_id} has failed")


class DeviceFullError(FlashError):
    """Raised when a write does not fit on the target device."""


class ChunkMissingError(FlashError):
    """Raised when a referenced chunk is not present on a device."""


class ChunkCorruptedError(FlashError):
    """Raised when a chunk's content fails its checksum (silent corruption)."""


class TransientIoError(FlashError):
    """Raised when a device operation fails transiently.

    The stored chunk is intact; a retry (or a read through peers/parity)
    succeeds. Injected by :class:`repro.faults.TransientReadError` events and
    counted by the health monitor as a soft error.
    """


class FaultPlanError(FlashError):
    """Raised when a fault plan is malformed (bad rates, times, targets)."""


class StripeLayoutError(FlashError):
    """Raised for invalid stripe geometry (e.g. parity >= width)."""


class OsdError(ReproError):
    """Base class for object-storage errors."""


class WireError(OsdError):
    """Raised when a PDU cannot be parsed: truncation, garbage, or a frame
    exceeding the protocol size limits.

    Transport code catches this separately from other :class:`OsdError`
    subclasses to distinguish protocol corruption (close the connection, the
    byte stream is unsynchronized) from target-side failures (reported as
    sense codes on a healthy stream).
    """


class ObjectNotFoundError(OsdError):
    """Raised when a (PID, OID) pair does not name a stored object."""


class ObjectExistsError(OsdError):
    """Raised when creating an object that already exists."""


class ObjectCorruptedError(OsdError):
    """Raised when an object is lost beyond the recovery capability."""


class ControlMessageError(OsdError):
    """Raised when a control-object message cannot be parsed."""


class CacheError(ReproError):
    """Base class for cache-manager errors."""


class CacheFullError(CacheError):
    """Raised when an object cannot be admitted even after eviction."""


class WorkloadError(ReproError):
    """Base class for workload-generation and trace errors."""
