"""Exception-policy rules: no broad excepts, no raises past the sense map.

Two related invariants:

- **broad-except** — ``except:`` / ``except Exception`` swallows
  programming errors (the reason :class:`repro.errors.ReproError` exists
  is so library failures can be caught *without* catching ``TypeError``).
  The only legitimate broad catches are rollback sites that re-raise
  after undoing partial state; those are named in an explicit allowlist
  or carry a ``# repro: allow[broad-except]`` comment.

- **sense-policy** — the OSD target's command handlers are the last stop
  before the wire: every internal failure must be converted into a T10
  sense code on an :class:`~repro.osd.target.OsdResponse` (paper
  Table III), never raised to the server loop, where it would tear down
  the connection instead of reporting ``0x63``. Concretely: a method of
  ``repro.osd.target`` whose return annotation is ``OsdResponse`` must
  not contain a ``raise`` statement.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.engine import Finding, Rule, RuleVisitor

__all__ = ["BroadExceptRule", "SensePolicyRule"]

_BROAD = {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}


class BroadExceptRule(Rule):
    rule_id = "broad-except"
    description = (
        "no bare or Exception-wide except clauses outside allowlisted "
        "rollback sites; catch the narrowest ReproError subclass"
    )
    scope = ()  # repo-wide

    #: ``"module:symbol"`` sites permitted to catch broadly (rollback code
    #: that re-raises). Currently empty — narrow catches everywhere.
    allowed_sites: Tuple[str, ...] = ()

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        visitor = _BroadExceptVisitor(self, module, path)
        visitor.collect_imports(tree)
        visitor.visit(tree)
        return visitor.findings


class _BroadExceptVisitor(RuleVisitor):
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = self._broad_name(node.type)
        if broad is not None:
            site = f"{self.module}:{self.symbol}"
            if site not in self.rule.allowed_sites:  # type: ignore[attr-defined]
                self.report(
                    node,
                    f"{broad} swallows programming errors; catch the "
                    "narrowest ReproError subclass (or allowlist this "
                    "rollback site)",
                )
        self.generic_visit(node)

    def _broad_name(self, type_node: Optional[ast.expr]) -> Optional[str]:
        if type_node is None:
            return "bare except:"
        candidates = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            name = self.canonical(candidate)
            if name in _BROAD:
                return f"except {name.rsplit('.', 1)[-1]}"
        return None


class SensePolicyRule(Rule):
    rule_id = "sense-policy"
    description = (
        "OsdTarget command handlers (methods returning OsdResponse) must "
        "map internal errors to sense codes, never raise to the wire loop"
    )
    scope = ("repro.osd.target",)

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for class_node in tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            for item in class_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _returns_osd_response(item):
                        findings.extend(
                            _raises_in(item, class_node.name, self, path)
                        )
        return findings


def _returns_osd_response(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    annotation = node.returns
    if isinstance(annotation, ast.Name):
        return annotation.id == "OsdResponse"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value == "OsdResponse"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "OsdResponse"
    return False


def _raises_in(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
    class_name: str,
    rule: Rule,
    path: str,
) -> List[Finding]:
    """Raise statements lexically inside ``func`` but not in nested defs."""
    findings: List[Finding] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scope: not this handler's control flow
        if isinstance(node, ast.Raise):
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=rule.rule_id,
                    message=(
                        "command handler raises instead of returning an "
                        "OsdResponse with a sense code (paper Table III)"
                    ),
                    symbol=f"{class_name}.{func.name}",
                )
            )
        stack.extend(ast.iter_child_nodes(node))
    return findings
