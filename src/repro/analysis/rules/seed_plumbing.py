"""Seed-plumbing rule: RNG state enters faults/, sim/, and cluster/ explicitly.

A ``seed=None`` default that falls through to ``random.Random(None)`` is
the quietest way to lose reproducibility: every call site that forgets
the argument silently runs on ambient entropy, and nothing fails until a
fault campaign stops being byte-identical across runs. The fault,
simulation, and cluster layers therefore hold a stricter line than the
rest of the repo: any *public* function or constructor under
``repro.faults``, ``repro.sim``, or ``repro.cluster`` that takes RNG
state (a parameter named ``seed``, ``rng``, or ``random_state``) must
either require it or default it to a concrete value — never to ``None``.
The cluster layer is in scope because its campaign artefacts (re-home
ledgers) are gated on byte-identical replay per seed.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Finding, Rule, RuleVisitor

__all__ = ["SeedPlumbingRule"]

_RNG_PARAM_NAMES = {"seed", "rng", "random_state"}


class SeedPlumbingRule(Rule):
    rule_id = "seed-plumbing"
    description = (
        "public constructors/functions in faults/, sim/, and cluster/ must "
        "take an explicit seed or RNG; a None default means ambient entropy"
    )
    scope = ("repro.faults", "repro.sim", "repro.cluster")

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        visitor = _SeedVisitor(self, module, path)
        visitor.visit(tree)
        return visitor.findings


class _SeedVisitor(RuleVisitor):
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_signature(node)
        super().visit_FunctionDef(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_signature(node)
        super().visit_AsyncFunctionDef(node)

    def _check_signature(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        if not self._is_public(node.name):
            return
        args = node.args
        # Positional/keyword args pair with the *tail* of the defaults list.
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults) :],
                                args.defaults):
            self._check_param(node, arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._check_param(node, arg, default)

    def _check_param(
        self,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        arg: ast.arg,
        default: ast.expr,
    ) -> None:
        if arg.arg not in _RNG_PARAM_NAMES:
            return
        if isinstance(default, ast.Constant) and default.value is None:
            self.report(
                arg,
                f"parameter {arg.arg!r} of {func.name}() defaults to None "
                "(ambient entropy); require it or default to a concrete seed",
            )

    def _is_public(self, name: str) -> bool:
        """Public = not underscore-private; ``__init__`` counts as public
        when every enclosing class/function is public."""
        if name.startswith("_") and name != "__init__":
            return False
        return all(
            not part.startswith("_") for part in self._symbols if part != "__init__"
        )
