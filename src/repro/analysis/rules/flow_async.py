"""Transitive async-blocking rule: blocking taint through the call graph.

The per-file ``async-blocking`` rule catches ``time.sleep()`` written
*directly* inside an ``async def``. It cannot see the two-line refactor
that defeats it: move the sleep into a sync helper (or a helper in
another module) and call the helper from the coroutine. The event loop
stalls exactly the same; the lint goes quiet.

This rule closes that hole with the project call graph. It computes the
set of *blocking-tainted* sync functions — those that make a blocking
call directly or reach one through a chain of sync project calls — and
flags every call from an in-scope ``async def`` (the event-loop code
under ``repro.net``, ``repro.cluster``, ``repro.osd.transport``) into a
tainted sync function. The finding message carries the full call chain
(``helper -> inner -> time.sleep``) so the report reads like the stack
trace the stall would produce.

Taint propagates through **sync** edges only: calling an ``async def``
produces a coroutine without running its body, so an async callee cannot
transitively block its sync caller — and if the callee itself blocks,
it is flagged at its own definition site (by this rule or the per-file
one). Direct blocking calls inside async defs are *not* re-reported
here; they stay the per-file rule's finding, keeping one finding per
root cause.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import Finding, ProjectRule, _matches_any
from repro.analysis.graph import CallSite, ProjectGraph
from repro.analysis.rules.async_blocking import _BLOCKING_CALLS, _BLOCKING_PREFIXES

__all__ = ["TransitiveBlockingRule"]

#: Async defs in these subtrees share the service event loop and must
#: not reach a blocking call through any depth of sync helpers.
_ASYNC_SCOPES = ("repro.net", "repro.osd.transport", "repro.cluster")


def _blocking_name(call: CallSite) -> Optional[str]:
    """The canonical blocking-call name this site hits, if any."""
    dotted = call.dotted
    if dotted is None:
        return None
    if dotted == "open":
        return "open"
    if dotted in _BLOCKING_CALLS:
        return dotted
    if any(dotted.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
        return dotted
    return None


class TransitiveBlockingRule(ProjectRule):
    rule_id = "transitive-blocking"
    description = (
        "no sync helper reachable from an event-loop async def may make a "
        "blocking call (time.sleep, sync sockets, file/process I/O), at "
        "any call-graph depth"
    )
    scope = _ASYNC_SCOPES  # documentation; reports are scoped internally

    def check_project(self, graph: ProjectGraph) -> List[Finding]:
        taint = _blocking_taint(graph)
        findings: List[Finding] = []
        for key in graph.functions:
            info = graph.functions[key]
            if not info.is_async or not _matches_any(info.module, _ASYNC_SCOPES):
                continue
            for call in info.calls:
                target = call.target
                if target is None or target not in taint:
                    continue
                callee = graph.functions[target]
                if callee.is_async:
                    continue  # flagged at its own site; awaiting is legal
                chain, root = _chain_for(graph, target, taint)
                findings.append(
                    Finding(
                        path=info.path,
                        line=call.lineno,
                        col=call.col,
                        rule_id=self.rule_id,
                        message=(
                            f"call stalls the event loop: {' -> '.join(chain)}"
                            f" -> {root}() blocks inside async {info.name}()"
                        ),
                        symbol=info.symbol,
                    )
                )
        return findings


def _blocking_taint(graph: ProjectGraph) -> Dict[str, Tuple[Optional[str], str]]:
    """Sync functions that reach a blocking call.

    Maps function key -> (next hop key or None, blocking call name). The
    next-hop pointer reconstructs a concrete chain for the report; with
    several blocking paths the lexically first discovered one wins, which
    is deterministic because functions and call sites are walked in file
    order.
    """
    taint: Dict[str, Tuple[Optional[str], str]] = {}
    # Seed: direct blocking calls in sync functions.
    for key in graph.functions:
        info = graph.functions[key]
        if info.is_async:
            continue
        for call in info.calls:
            name = _blocking_name(call)
            if name is not None:
                taint[key] = (None, name)
                break
    # Propagate backwards through sync callers to a fixed point.
    changed = True
    while changed:
        changed = False
        for key in graph.functions:
            info = graph.functions[key]
            if info.is_async or key in taint:
                continue
            for call in info.calls:
                target = call.target
                if (
                    target is not None
                    and target in taint
                    and not graph.functions[target].is_async
                ):
                    taint[key] = (target, taint[target][1])
                    changed = True
                    break
    return taint


def _chain_for(
    graph: ProjectGraph,
    start: str,
    taint: Dict[str, Tuple[Optional[str], str]],
) -> Tuple[List[str], str]:
    """Reconstruct the helper chain from ``start`` to its blocking call."""
    chain: List[str] = []
    key: Optional[str] = start
    root = taint[start][1]
    seen = set()
    while key is not None and key not in seen:
        seen.add(key)
        info = graph.functions[key]
        chain.append(f"{info.module}.{info.symbol}")
        key, root = taint[key]
    return chain, root
