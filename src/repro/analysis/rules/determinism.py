"""Determinism rule: no wall clock, no ambient entropy.

PR 3's fault campaigns promise byte-identical durability ledgers per seed,
and every simulator result is supposed to be a pure function of
``(workload seed, fault-plan seed, config)``. That only holds if nothing
in the simulated world consults the host: the sanctioned time source is
:class:`repro.sim.clock.SimClock` and the sanctioned randomness is a
seeded ``random.Random`` / ``numpy.random.default_rng(seed)`` object
threaded in from the outside.

Repo-wide, this rule bans the *always-wrong* sources:

- ``time.time()`` / ``time.time_ns()`` — non-monotonic wall clock;
- ``datetime.now()`` / ``utcnow()`` / ``today()`` — wall clock again;
- module-level ``random.*`` functions (``random.random()``,
  ``random.randint()``, ...) — hidden global RNG state;
- ``random.Random()`` / ``numpy.random.default_rng()`` with no seed and
  ``random.SystemRandom`` — ambient entropy;
- ``numpy.random.seed()`` and the legacy ``numpy.random.<dist>()``
  global-state API.

Inside the simulation core (``repro.sim``, ``repro.core``,
``repro.faults``, ``repro.cache``, ``repro.erasure``) it additionally bans
the monotonic host clocks (``time.monotonic``, ``time.perf_counter``,
``time.process_time``): simulated code must take time from the
:class:`~repro.sim.clock.SimClock` it is handed, full stop.
``repro.sim.clock`` itself is exempt — it *is* the sanctioned source.

``time.perf_counter`` stays legal outside the core because the socket
layer and experiment drivers genuinely measure host elapsed time.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.engine import Finding, Rule, RuleVisitor, _matches_any

__all__ = ["DeterminismRule"]

#: Non-monotonic wall clock: banned everywhere.
_WALL_CLOCK = {"time", "time_ns"}
#: Host clocks banned only inside the simulation core.
_HOST_CLOCKS = {
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_CLASSES = {"datetime.datetime", "datetime.date"}
_DATETIME_FNS = {"now", "utcnow", "today"}

#: Subtrees where the strict (host-clock) checks also apply.
_STRICT_PREFIXES = (
    "repro.sim",
    "repro.core",
    "repro.faults",
    "repro.cache",
    "repro.erasure",
)


class DeterminismRule(Rule):
    rule_id = "determinism"
    description = (
        "no wall clock or ambient entropy; simulated code takes time from "
        "SimClock and randomness from an explicitly seeded RNG object"
    )
    scope = ()  # repo-wide; the strict extras apply within _STRICT_PREFIXES
    exempt = ("repro.sim.clock",)

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        visitor = _DeterminismVisitor(self, module, path)
        visitor.collect_imports(tree)
        visitor.visit(tree)
        return visitor.findings


class _DeterminismVisitor(RuleVisitor):
    def __init__(self, rule: Rule, module: str, path: str) -> None:
        super().__init__(rule, module, path)
        self.strict = _matches_any(module, _STRICT_PREFIXES)

    def visit_Call(self, node: ast.Call) -> None:
        name = self.canonical(node.func)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if name.startswith("time."):
            fn = name[len("time.") :]
            if fn in _WALL_CLOCK:
                self.report(
                    node,
                    f"wall-clock call {name}() is non-deterministic; use the "
                    "SimClock (simulated code) or time.perf_counter (host timing)",
                )
            elif fn in _HOST_CLOCKS and self.strict:
                self.report(
                    node,
                    f"host-clock call {name}() inside the simulation core; "
                    "take time from the SimClock that is passed in",
                )
            return
        if self._is_datetime_call(name):
            self.report(
                node,
                f"{name}() reads the wall clock; simulated timestamps must "
                "come from the SimClock",
            )
            return
        if name.startswith("random."):
            self._check_random(node, name[len("random.") :])
            return
        if name.startswith("numpy.random."):
            self._check_numpy_random(node, name[len("numpy.random.") :])

    @staticmethod
    def _is_datetime_call(name: str) -> bool:
        for cls in _DATETIME_CLASSES:
            prefix = cls + "."
            if name.startswith(prefix) and name[len(prefix) :] in _DATETIME_FNS:
                return True
        # `from datetime import datetime` resolves to "datetime.datetime",
        # so calls arrive as "datetime.datetime.now" either way; a bare
        # `import datetime` spelling gives "datetime.date.today" too.
        return False

    def _check_random(self, node: ast.Call, fn: str) -> None:
        if fn == "Random":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "random.Random() without a seed draws ambient entropy; "
                    "pass an explicit seed",
                )
            return
        if fn == "SystemRandom" or fn.startswith("SystemRandom."):
            self.report(
                node, "random.SystemRandom is ambient entropy; use a seeded Random"
            )
            return
        self.report(
            node,
            f"module-level random.{fn}() uses hidden global RNG state; "
            "use a seeded random.Random object instead",
        )

    def _check_numpy_random(self, node: ast.Call, fn: str) -> None:
        if fn == "default_rng":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "numpy.random.default_rng() without a seed draws ambient "
                    "entropy; pass an explicit seed",
                )
            return
        self.report(
            node,
            f"numpy.random.{fn}() touches numpy's global RNG state; use a "
            "seeded numpy.random.default_rng(seed) generator",
        )


def strict_prefixes() -> Tuple[str, ...]:
    """The subtrees held to the strict (host-clock) standard, for docs/tests."""
    return _STRICT_PREFIXES
