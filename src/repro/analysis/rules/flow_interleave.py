"""Await-interleaving rule: no stale read-modify-write across an await.

Every ``await`` is a scheduling point: any other task — another client
connection, the probe loop, the autonomous supervisor — may run and
mutate shared object state before control returns. The bug class this
rule targets shipped twice during the cluster work (PR 6): a method
snapshots ``self``-state into a local, awaits, then writes the *stale*
snapshot back, silently clobbering whatever a concurrent task installed
in between — the stale-map adopt and the stats-clobber both had exactly
this shape:

    snapshot = self.cluster_map          # read
    await self.refresh_map()             # interleaving point
    self.cluster_map = merge(snapshot)   # write-back of stale state

Detection is a linear abstract pass over each in-scope async method, in
source order:

1. ``local = self.attr[.attr...]`` records a snapshot of that attribute
   chain;
2. any ``await`` marks all recorded snapshots *stale* and clears the set
   of attribute chains freshly read since the last await;
3. a store ``self.attr[.attr...] = expr`` fires when ``expr`` mentions a
   stale snapshot local and the same chain has not been re-read since
   the last await. A fresh read (``if self.attr is snapshot: ...``, or
   recomputing from ``self.attr``) counts as re-validation and keeps the
   rule quiet — re-validating before the write is exactly the fix.

Approximations, chosen to keep the rule quiet on correct code: control
flow is linearized (an await in a dead branch still counts), subscript
stores (``self.d[k] = v``) and calls that mutate state internally are
not tracked, and ``AugAssign`` (``self.x += 1``) is exempt because it
re-reads at write time.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ProjectRule, _matches_any
from repro.analysis.graph import ProjectGraph

__all__ = ["AwaitInterleavingRule"]

_SCOPES = ("repro.net", "repro.osd.transport", "repro.cluster")


def _self_chain(node: ast.expr) -> Optional[str]:
    """Dotted attribute chain rooted at ``self`` ("cluster_map",
    "service.cluster_map"), or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


class AwaitInterleavingRule(ProjectRule):
    rule_id = "await-interleaving"
    description = (
        "async methods must not write self-state from a local snapshot "
        "taken before an await without re-reading it after (stale "
        "read-modify-write across a scheduling point)"
    )
    scope = _SCOPES

    def check_project(self, graph: ProjectGraph) -> List[Finding]:
        findings: List[Finding] = []
        for key in graph.functions:
            info = graph.functions[key]
            if not info.is_async or not _matches_any(info.module, _SCOPES):
                continue
            node = info.node
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for lineno, col, chain, local in _stale_writebacks(node):
                findings.append(
                    Finding(
                        path=info.path,
                        line=lineno,
                        col=col,
                        rule_id=self.rule_id,
                        message=(
                            f"self.{chain} is written back from {local!r}, "
                            "which was read before an await; another task "
                            "may have updated it at the scheduling point — "
                            f"re-read self.{chain} after the await (or take "
                            "the snapshot after the last await)"
                        ),
                        symbol=info.symbol,
                    )
                )
        return findings


def _events(func: ast.AsyncFunctionDef) -> List[Tuple[int, int, str, Any]]:
    """(line, col, kind, payload) events in source order for one method.

    Kinds: ``snapshot`` (local <- self chain), ``await``, ``load`` (self
    chain read), ``store`` (self chain write: payload is (chain, value)).
    Nested function bodies are skipped — they run on their own schedule.
    """
    events: List[Tuple[int, int, str, Any]] = []

    def walk(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Await):
            events.append((node.lineno, node.col_offset, "await", None))
            walk_children(node)
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value_chain = _self_chain(node.value)
            if isinstance(target, ast.Name) and value_chain is not None:
                # The read itself is also a fresh load; emit load first so
                # an await in between invalidates it correctly.
                events.append(
                    (node.lineno, node.col_offset, "load", value_chain)
                )
                events.append(
                    (node.lineno, node.col_offset, "snapshot",
                     (target.id, value_chain))
                )
                return
            if isinstance(target, ast.Name):
                # Re-bound local: whatever snapshot it held is gone.
                walk(node.value)
                events.append((node.lineno, node.col_offset, "clear", target.id))
                return
            store_chain = _self_chain(target) if isinstance(
                target, ast.Attribute
            ) else None
            if store_chain is not None:
                walk(node.value)  # loads/awaits in the RHS come first
                events.append(
                    (node.lineno, node.col_offset, "store",
                     (store_chain, node.value))
                )
                return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            chain = _self_chain(node)
            if chain is not None:
                events.append((node.lineno, node.col_offset, "load", chain))
                return  # don't descend: inner chain is part of this load
        walk_children(node)

    def walk_children(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            walk(child)

    for stmt in func.body:
        walk(stmt)
    return events


def _stale_writebacks(
    func: ast.AsyncFunctionDef,
) -> List[Tuple[int, int, str, str]]:
    """(line, col, chain, local) for every stale write-back in ``func``."""
    #: local name -> (chain, crossed_await)
    snapshots: Dict[str, Tuple[str, bool]] = {}
    fresh: Set[str] = set()  # chains read since the last await
    hits: List[Tuple[int, int, str, str]] = []
    for lineno, col, kind, payload in _events(func):
        if kind == "await":
            snapshots = {
                name: (chain, True) for name, (chain, _) in snapshots.items()
            }
            fresh = set()
        elif kind == "load":
            fresh.add(payload)
        elif kind == "snapshot":
            name, chain = payload
            snapshots[name] = (chain, False)
        elif kind == "clear":
            snapshots.pop(payload, None)
        elif kind == "store":
            chain, value = payload
            local = _stale_local_in(value, chain, snapshots, fresh)
            if local is not None:
                hits.append((lineno, col, chain, local))
            # The write refreshes the chain for later statements.
            fresh.add(chain)
    return hits


def _stale_local_in(
    value: ast.expr,
    chain: str,
    snapshots: Dict[str, Tuple[str, bool]],
    fresh: Set[str],
) -> Optional[str]:
    """Name of a stale snapshot of ``chain`` referenced by ``value``."""
    if chain in fresh:
        return None  # re-validated since the last await
    for node in ast.walk(value):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            snap = snapshots.get(node.id)
            if snap is not None and snap[0] == chain and snap[1]:
                return node.id
    return None
