"""Project-specific lint rules.

Each module contributes one or two :class:`~repro.analysis.engine.Rule`
subclasses; :func:`default_rules` is the registry the CLI and CI run.

Adding a rule: subclass ``Rule`` in a new module here, set ``rule_id`` /
``description`` / ``scope``, implement ``check`` (usually with a
:class:`~repro.analysis.engine.RuleVisitor`), add it to
:func:`default_rules`, and give it positive + negative fixture tests in
``tests/analysis/``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import BroadExceptRule, SensePolicyRule
from repro.analysis.rules.seed_plumbing import SeedPlumbingRule

__all__ = [
    "AsyncBlockingRule",
    "BroadExceptRule",
    "DeterminismRule",
    "SeedPlumbingRule",
    "SensePolicyRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """The full rule set, in stable order."""
    return [
        DeterminismRule(),
        AsyncBlockingRule(),
        BroadExceptRule(),
        SensePolicyRule(),
        SeedPlumbingRule(),
    ]
