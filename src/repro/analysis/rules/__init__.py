"""Project-specific lint rules.

Each module contributes one or two :class:`~repro.analysis.engine.Rule`
subclasses; :func:`default_rules` is the registry the CLI and CI run.
Per-file rules subclass ``Rule`` and see one module at a time;
whole-program rules subclass :class:`~repro.analysis.engine.ProjectRule`
and see the :class:`~repro.analysis.graph.ProjectGraph`.

Adding a rule: subclass ``Rule`` (or ``ProjectRule``) in a new module
here, set ``rule_id`` / ``description`` / ``scope``, implement ``check``
(usually with a :class:`~repro.analysis.engine.RuleVisitor`) or
``check_project``, add it to :func:`default_rules`, and give it positive
+ negative fixture tests in ``tests/analysis/``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exceptions import BroadExceptRule, SensePolicyRule
from repro.analysis.rules.flow_async import TransitiveBlockingRule
from repro.analysis.rules.flow_interleave import AwaitInterleavingRule
from repro.analysis.rules.flow_sense import SenseExhaustiveRule
from repro.analysis.rules.flow_taint import DeterminismTaintRule
from repro.analysis.rules.seed_plumbing import SeedPlumbingRule

__all__ = [
    "AsyncBlockingRule",
    "AwaitInterleavingRule",
    "BroadExceptRule",
    "DeterminismRule",
    "DeterminismTaintRule",
    "SeedPlumbingRule",
    "SenseExhaustiveRule",
    "SensePolicyRule",
    "TransitiveBlockingRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """The full rule set, in stable order: per-file, then whole-program."""
    return [
        DeterminismRule(),
        AsyncBlockingRule(),
        BroadExceptRule(),
        SensePolicyRule(),
        SeedPlumbingRule(),
        TransitiveBlockingRule(),
        AwaitInterleavingRule(),
        SenseExhaustiveRule(),
        DeterminismTaintRule(),
    ]
