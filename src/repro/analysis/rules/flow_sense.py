"""Sense-code exhaustiveness: every emitted code has a handling side.

The sense vocabulary (:class:`repro.osd.sense.SenseCode`, paper
Table III) is the *entire* failure-reporting contract between the
server tier and the initiator tier: the OSD target, the socket server,
and the shard server report every outcome as a sense code on a healthy
connection, and the client/router layers branch on those codes to retry,
re-route, fail over, or surface the outcome. That contract is
cross-module by construction — and nothing enforced it: add a new code
to the enum, emit it from ``ShardServer``, and every router in the fleet
silently treats it like a generic failure (no replay, no map refresh, no
backoff), which is exactly how ``WRONG_SHARD`` would have rotted had it
been added after the fact.

This rule closes the loop over the whole program:

- **emitted** codes are every ``SenseCode.X`` reference in the server
  tier (``repro.osd.target``, ``repro.net.server``,
  ``repro.cluster.service``);
- **handled** codes are every ``SenseCode.X`` reference in the
  client/initiator tier (``repro.net.client``, ``repro.net.retry``,
  ``repro.cluster.router``, ``repro.cluster.breaker``,
  ``repro.cache.manager``, ``repro.osd.initiator``, ``repro.osd.exofs``)
  — a comparison, a dispatch-table key, or membership in the declared
  pass-through default;
- a code emitted but never handled is a finding at its first emit site.

The **declared default** is the sanctioned escape hatch for codes that
are deliberately surfaced to callers rather than branched on: a
module-level ``SENSE_HANDLED_BY_DEFAULT = (SenseCode.X, ...)`` tuple in
a handler module. It keeps the contract auditable — adding a code means
either writing the handling branch or *visibly* declaring that callers
get it raw — and it is what makes this rule fail when a new member is
added on the server side only.

References are matched through import aliases (``from repro.osd.sense
import SenseCode as SC`` still counts), and the enum itself is located
in the graph by class name, so fixture trees exercise the rule exactly
like the real tree.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ProjectRule, _matches_any
from repro.analysis.graph import ModuleInfo, ProjectGraph

__all__ = ["SenseExhaustiveRule"]

_ENUM_CLASS = "SenseCode"
_DEFAULT_DECL = "SENSE_HANDLED_BY_DEFAULT"

#: Server tier: modules whose SenseCode references are *emissions*.
_EMITTER_MODULES = (
    "repro.osd.target",
    "repro.net.server",
    "repro.cluster.service",
)
#: Client/initiator tier: modules whose references count as *handling*.
_HANDLER_MODULES = (
    "repro.net.client",
    "repro.net.retry",
    "repro.cluster.router",
    "repro.cluster.breaker",
    "repro.cache.manager",
    "repro.osd.initiator",
    "repro.osd.exofs",
)


class SenseExhaustiveRule(ProjectRule):
    rule_id = "sense-exhaustive"
    description = (
        "every SenseCode the server tier emits must be handled in the "
        "client/router tier — explicitly or via the declared "
        "SENSE_HANDLED_BY_DEFAULT pass-through tuple"
    )
    scope = _EMITTER_MODULES

    def check_project(self, graph: ProjectGraph) -> List[Finding]:
        enum_members = _enum_members(graph)
        if enum_members is None:
            return []  # no SenseCode enum in this tree: nothing to check
        emitted = _references(graph, _EMITTER_MODULES)
        handled = _references(graph, _HANDLER_MODULES)
        handled_names = set(handled) | _declared_defaults(graph)
        findings: List[Finding] = []
        for member in sorted(emitted):
            if member not in enum_members:
                continue  # not an enum member (typo'd refs are mypy's job)
            if member in handled_names:
                continue
            path, lineno, col, module, symbol = emitted[member]
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"SenseCode.{member} is emitted by {module} but "
                        "handled nowhere in the client/initiator tier "
                        f"({', '.join(_HANDLER_MODULES[:3])}, ...); add a "
                        "handling branch or list it in "
                        f"{_DEFAULT_DECL} with a rationale"
                    ),
                    symbol=symbol,
                )
            )
        return findings


def _enum_members(graph: ProjectGraph) -> Optional[Set[str]]:
    """Members of the SenseCode enum, located by class name in the graph.

    Prefers a class in a module named ``*.sense`` when several exist.
    """
    candidates = [
        cls for cls in graph.classes.values() if cls.name == _ENUM_CLASS
    ]
    if not candidates:
        return None
    candidates.sort(
        key=lambda cls: (not cls.module.endswith(".sense"), cls.module)
    )
    cls = candidates[0]
    module = graph.modules.get(cls.module)
    if module is None:
        return None
    members: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == _ENUM_CLASS:
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and target.id.isupper():
                            members.add(target.id)
    return members


def _sense_member(info: ModuleInfo, node: ast.Attribute) -> Optional[str]:
    """``SenseCode.X`` member name for an attribute node, alias-aware."""
    parts: List[str] = []
    expr: ast.expr = node
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if not isinstance(expr, ast.Name) or len(parts) != 1:
        return None
    dotted = info.aliases.get(expr.id, expr.id)
    if dotted == _ENUM_CLASS or dotted.endswith("." + _ENUM_CLASS):
        return parts[0]
    return None


def _references(
    graph: ProjectGraph, modules: Tuple[str, ...]
) -> Dict[str, Tuple[str, int, int, str, str]]:
    """Member -> (path, line, col, module, symbol) of its first reference."""
    refs: Dict[str, Tuple[str, int, int, str, str]] = {}
    for module_name in sorted(graph.modules):
        if not _matches_any(module_name, modules):
            continue
        info = graph.modules[module_name]
        for node, symbol in _walk_with_symbols(info.tree):
            if isinstance(node, ast.Attribute):
                member = _sense_member(info, node)
                if member is not None and member not in refs:
                    refs[member] = (
                        info.path, node.lineno, node.col_offset,
                        module_name, symbol,
                    )
    return refs


def _walk_with_symbols(tree: ast.Module) -> List[Tuple[ast.AST, str]]:
    """(node, enclosing dotted symbol) pairs in source order."""
    out: List[Tuple[ast.AST, str]] = []

    def walk(node: ast.AST, symbols: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols = symbols + (node.name,)
        for child in ast.iter_child_nodes(node):
            out.append((child, ".".join(symbols)))
            walk(child, symbols)

    walk(tree, ())
    return out


def _declared_defaults(graph: ProjectGraph) -> Set[str]:
    """Members listed in any handler module's SENSE_HANDLED_BY_DEFAULT."""
    declared: Set[str] = set()
    for module_name in sorted(graph.modules):
        if not _matches_any(module_name, _HANDLER_MODULES):
            continue
        info = graph.modules[module_name]
        for node in info.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            if not any(
                isinstance(t, ast.Name) and t.id == _DEFAULT_DECL
                for t in targets
            ):
                continue
            value = node.value
            assert value is not None
            for sub in ast.walk(value):
                if isinstance(sub, ast.Attribute):
                    member = _sense_member(info, sub)
                    if member is not None:
                        declared.add(member)
    return declared
