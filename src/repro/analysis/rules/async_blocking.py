"""Async-blocking rule: the event loop must never be blocked.

The :mod:`repro.net` service layer serves every client connection on one
asyncio event loop; a single synchronous sleep or socket call inside an
``async def`` stalls *all* connections (and the chaos tests' timing).
The :mod:`repro.cluster` layer (router, health probes, supervisor loop)
shares that loop, so it is in scope too — a blocked supervisor cannot
condemn a failing shard, which is exactly the outage the detector exists
to end.
Likewise a coroutine called but never awaited silently does nothing —
the classic "the retry never ran" bug.

Inside ``async def`` bodies in scope this rule flags:

- ``time.sleep()`` — use ``await asyncio.sleep()``;
- synchronous ``socket.*`` calls — use asyncio streams;
- the ``open()`` builtin and ``os.*`` / ``subprocess.*`` process or file
  calls — move blocking I/O off the loop (``run_in_executor``);
- ``asyncio.run()`` — a nested event loop, always a bug in server code;
- bare coroutine calls that are never awaited: statement-level calls of
  ``async def`` functions defined in the same module (either by name or
  as ``self.<method>()``), without ``await`` or a task wrapper;
- ``await <stream>.drain()`` inside a ``for``/``while`` loop — a drain
  per command defeats write coalescing (each one can yield to the
  scheduler and flush a single PDU). Responses belong on the connection's
  :class:`~repro.net.flush.StreamFlusher`, which drains once per batch;
  the flusher's own flush loop is the one sanctioned site and carries a
  ``# repro: allow[async-blocking]`` tag.

Nested *synchronous* ``def`` bodies are skipped: they only run when
called, and flagging them here would double-report helper functions.

Synchronous methods of :class:`asyncio.Protocol` /
:class:`asyncio.BufferedProtocol` subclasses are **in scope** despite not
being ``async def``: the event loop invokes ``data_received`` /
``buffer_updated`` / ``connection_made`` and friends directly as
callbacks, so a ``time.sleep`` there stalls the loop exactly like one
inside a coroutine. The rule detects protocol subclasses by their base
class names (resolved through the module's imports) and applies the same
blocking-call and unawaited-coroutine checks to their sync methods.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.engine import Finding, Rule, RuleVisitor

__all__ = ["AsyncBlockingRule"]

#: Canonical dotted prefixes of blocking calls banned inside async defs.
_BLOCKING_PREFIXES = (
    "socket.",
    "subprocess.",
    "urllib.request.",
    "requests.",
)
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.waitpid",
    "asyncio.run",
}

#: Base classes whose sync methods are event-loop callbacks.
_PROTOCOL_BASES = {
    "asyncio.BaseProtocol",
    "asyncio.Protocol",
    "asyncio.BufferedProtocol",
    "asyncio.DatagramProtocol",
    "asyncio.SubprocessProtocol",
}


class AsyncBlockingRule(Rule):
    rule_id = "async-blocking"
    description = (
        "no blocking calls (time.sleep, sync sockets, file/process I/O) and "
        "no unawaited coroutines inside async def bodies"
    )
    scope = ("repro.net", "repro.osd.transport", "repro.cluster")

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        async_defs = _collect_async_defs(tree)
        visitor = _AsyncVisitor(self, module, path, async_defs)
        visitor.collect_imports(tree)
        visitor.visit(tree)
        return visitor.findings


def _collect_async_defs(tree: ast.Module) -> Dict[Optional[str], Set[str]]:
    """Map class name (None = module level) -> names of its async defs."""
    table: Dict[Optional[str], Set[str]] = {None: set()}
    for node in tree.body:
        if isinstance(node, ast.AsyncFunctionDef):
            table[None].add(node.name)
        elif isinstance(node, ast.ClassDef):
            methods = {
                item.name
                for item in node.body
                if isinstance(item, ast.AsyncFunctionDef)
            }
            if methods:
                table[node.name] = methods
    return table


class _AsyncVisitor(RuleVisitor):
    def __init__(
        self,
        rule: Rule,
        module: str,
        path: str,
        async_defs: Dict[Optional[str], Set[str]],
    ) -> None:
        super().__init__(rule, module, path)
        self._async_defs = async_defs
        self._async_depth = 0
        self._loop_depth = 0
        self._function_depth = 0
        self._class_stack: List[str] = []
        #: Parallel to the class stack: True for asyncio protocol classes,
        #: whose *sync* methods are event-loop callbacks.
        self._protocol_stack: List[bool] = []

    # -- context tracking ------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._protocol_stack.append(
            any(self.canonical(base) in _PROTOCOL_BASES for base in node.bases)
        )
        super().visit_ClassDef(node)
        self._class_stack.pop()
        self._protocol_stack.pop()

    def _is_protocol_callback(self) -> bool:
        """True when entering a sync method the event loop calls directly."""
        return (
            self._function_depth == 0
            and bool(self._protocol_stack)
            and self._protocol_stack[-1]
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested sync def's body runs outside the awaiting context —
        # except a protocol subclass's methods, which the event loop
        # invokes directly as callbacks.
        depth, self._async_depth = (
            self._async_depth,
            1 if self._is_protocol_callback() else 0,
        )
        loops, self._loop_depth = self._loop_depth, 0
        self._function_depth += 1
        super().visit_FunctionDef(node)
        self._function_depth -= 1
        self._async_depth = depth
        self._loop_depth = loops

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        # A nested def's body runs per *call*, not per iteration of any
        # loop that lexically encloses its definition.
        loops, self._loop_depth = self._loop_depth, 0
        self._async_depth += 1
        self._function_depth += 1
        super().visit_AsyncFunctionDef(node)
        self._function_depth -= 1
        self._async_depth -= 1
        self._loop_depth = loops

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # -- checks ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth:
            self._check_blocking(node)
        self.generic_visit(node)

    def _check_blocking(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self.report(
                node,
                "blocking open() inside async def; move file I/O off the "
                "event loop (run_in_executor)",
            )
            return
        name = self.canonical(node.func)
        if name is None:
            return
        if name == "asyncio.run":
            self.report(node, "asyncio.run() inside async def nests event loops")
            return
        if name in _BLOCKING_CALLS or any(
            name.startswith(prefix) for prefix in _BLOCKING_PREFIXES
        ):
            hint = " (use asyncio.sleep)" if name == "time.sleep" else ""
            self.report(
                node,
                f"blocking call {name}() inside async def stalls the event "
                f"loop{hint}",
            )

    def visit_Await(self, node: ast.Await) -> None:
        if (
            self._async_depth
            and self._loop_depth
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "drain"
        ):
            self.report(
                node,
                "await drain() inside a per-command loop defeats write "
                "coalescing; enqueue on the connection's StreamFlusher and "
                "drain once per batch",
            )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        if self._async_depth and isinstance(node.value, ast.Call):
            coro = self._coroutine_name(node.value.func)
            if coro is not None:
                self.report(
                    node,
                    f"coroutine {coro}() is called but never awaited; "
                    "await it or wrap it in asyncio.create_task",
                )
        self.generic_visit(node)

    def _coroutine_name(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in self._async_defs[None]:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self._class_stack
        ):
            methods = self._async_defs.get(self._class_stack[-1], set())
            if func.attr in methods:
                return f"self.{func.attr}"
        return None
