"""Determinism taint: wall-clock/EWMA values stay out of replay artefacts.

The repo's headline reliability claim is *byte-identical recovery
ledgers per seed*: the :class:`~repro.core.supervisor.DurabilityLedger`
and the campaign determinism artefacts (the non-``metrics`` fields of
``BENCH_*.json`` and the ``*_ledger.json`` payloads) must be pure
functions of the seed. The PR-8 near-miss is the canonical hazard: the
shard health detector's transition reasons embed live EWMA readings
(``"error_ewma=0.412"``) fed from ``loop.time()`` round trips — book one
of those strings into the ledger and every run produces a different
artefact. That bug is *cross-module by nature*: the EWMA is read in
``cluster/health.py``, formatted into a string there, and the booking
happens two calls away in ``cluster/supervisor.py``.

This rule tracks that flow over the project call graph:

- **sources** — wall-clock calls (the ``time.time``/``perf_counter``/
  ``monotonic`` family, ``datetime.now``-family, ``loop.time()``) plus,
  inside the wall-clock domain (``repro.net``, ``repro.cluster``), any
  read of an ``*ewma*``-named attribute (those EWMAs are
  host-latency-fed; the SimClock-fed EWMAs under ``repro.core`` are
  seed-deterministic and stay clean);
- **propagation** — through local assignment, arithmetic, f-strings and
  ``str.format``; *across functions* through returned values, through
  arguments into callee parameters, through constructor arguments into
  class fields (so a ``ShardTransition.reason`` built from an EWMA
  f-string taints ``transition.reason`` reads wherever the static type
  is known), and through ``self.x = tainted`` attribute stores;
- **sinks** — arguments of ``DurabilityLedger`` method calls (resolved
  via the graph, or any ``*.ledger.method()`` receiver chain), attribute
  stores on objects returned by ledger calls (``incident.reason = ...``),
  and — in ``repro.experiments`` — dict-literal fields in ``*bench*``
  functions *outside* the sanctioned ``"metrics"`` subtree, every field
  in ``*ledger*`` functions, and direct ``json.dump(s)`` arguments.

The ``"metrics"`` exemption encodes the existing convention: measured
wall-clock numbers (throughput, detection latency) belong under the
``metrics`` key, where the bench gate compares with tolerance; the
identity fields around them are compared exactly and must stay
deterministic.

Taint labels are per-parameter, so summaries compose: a helper whose
parameter reaches a ledger booking makes every call site passing tainted
data into that parameter a finding at the *call site* — the place the
fix belongs. Like every rule here the analysis is linear per function
(branches are not joined) and containers are opaque; it under-reports
rather than over-reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ProjectRule, _matches_any
from repro.analysis.graph import CallSite, FunctionInfo, ProjectGraph

__all__ = ["DeterminismTaintRule"]

_REAL = "real"

#: Wall-clock calls: tainted everywhere.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}
#: Builtins that pass taint through from arguments to result.
_PASSTHROUGH = {"str", "repr", "format", "round", "abs", "min", "max", "float", "int"}
#: Modules whose EWMAs are host-latency-fed (reading one is a source).
_WALL_DOMAIN = ("repro.net", "repro.cluster")
#: Modules whose bench/ledger dict literals are artefact sinks.
_ARTEFACT_MODULES = ("repro.experiments",)
_LEDGER_CLASS = "DurabilityLedger"

Labels = FrozenSet[str]
_CLEAN: Labels = frozenset()
_REAL_ONLY: Labels = frozenset({_REAL})


def _is_wall_clock(dotted: Optional[str]) -> bool:
    if dotted is None:
        return False
    if dotted in _WALL_CLOCK_CALLS:
        return True
    # loop.time() heuristic: `<...loop>.time()` is the asyncio clock.
    parts = dotted.split(".")
    return len(parts) >= 2 and parts[-1] == "time" and parts[-2].endswith("loop")


def _is_ewma_name(name: str) -> bool:
    return "ewma" in name.lower()


def _chain_parts(func: ast.expr) -> Optional[List[str]]:
    """Raw attribute chain of a call target, e.g. ['self', 'ledger', 'f']."""
    parts: List[str] = []
    node: ast.expr = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass
class _Facts:
    """Interprocedural facts, grown monotonically to a fixed point."""

    #: (function key, param name): the param receives tainted data somewhere.
    tainted_params: Set[Tuple[str, str]] = field(default_factory=set)
    #: Function keys whose return value is tainted.
    tainted_returns: Set[str] = field(default_factory=set)
    #: (class key, attr): the field holds tainted data somewhere.
    tainted_fields: Set[Tuple[str, str]] = field(default_factory=set)
    #: (function key, param name): the param value reaches a sink inside.
    param_sinks: Set[Tuple[str, str]] = field(default_factory=set)

    def size(self) -> int:
        return (
            len(self.tainted_params)
            + len(self.tainted_returns)
            + len(self.tainted_fields)
            + len(self.param_sinks)
        )


class DeterminismTaintRule(ProjectRule):
    rule_id = "determinism-taint"
    description = (
        "wall-clock/EWMA-derived values must not flow into "
        "DurabilityLedger bookings or the deterministic (non-metrics) "
        "fields of bench/ledger artefacts"
    )
    scope = ()  # repo-wide; the sinks define the surface

    def check_project(self, graph: ProjectGraph) -> List[Finding]:
        facts = _Facts()
        # Grow summaries to a fixed point, then one reporting pass.
        for _ in range(24):
            before = facts.size()
            for key in graph.functions:
                _FunctionPass(graph, graph.functions[key], facts).run()
            if facts.size() == before:
                break
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int, str]] = set()
        for key in graph.functions:
            info = graph.functions[key]
            for line, col, message in _FunctionPass(graph, info, facts).run():
                identity = (info.path, line, col, message)
                if identity not in seen:
                    seen.add(identity)
                    findings.append(
                        Finding(
                            path=info.path,
                            line=line,
                            col=col,
                            rule_id=self.rule_id,
                            message=message,
                            symbol=info.symbol,
                        )
                    )
        return findings


class _FunctionPass:
    """One linear taint pass over one function body.

    Running a pass both *reports* (returns local sink hits) and *learns*
    (adds interprocedural facts); facts only grow, so repeating passes
    over all functions converges.
    """

    def __init__(
        self, graph: ProjectGraph, info: FunctionInfo, facts: _Facts
    ) -> None:
        self.graph = graph
        self.info = info
        self.facts = facts
        self.locals: Dict[str, Labels] = {}
        #: Locals holding objects returned by ledger calls.
        self.ledger_locals: Set[str] = set()
        self.typed_locals: Dict[str, str] = {}
        self.hits: List[Tuple[int, int, str]] = []
        self._calls: Dict[Tuple[int, int], CallSite] = {
            (c.lineno, c.col): c for c in info.calls
        }
        for param in info.params:
            labels = {f"param:{param}"}
            if (info.key, param) in facts.tainted_params:
                labels.add(_REAL)
            self.locals[param] = frozenset(labels)
            raw = info.param_types.get(param)
            if raw is not None:
                resolved = graph.resolve_class(info.module, raw)
                if resolved is not None:
                    self.typed_locals[param] = resolved

    def run(self) -> List[Tuple[int, int, str]]:
        node = self.info.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in node.body:
                self._stmt(stmt)
            self._artefact_dict_sinks(node)
        return self.hits

    # -- statements ------------------------------------------------------
    def _stmt(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            self._assign(node.targets[0], node.value)
            return
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            self._assign(node.target, node.value)
            return
        if isinstance(node, ast.AugAssign):
            labels = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                merged = self.locals.get(node.target.id, _CLEAN) | labels
                self.locals[node.target.id] = merged
            elif isinstance(node.target, ast.Attribute):
                self._attribute_store(node.target, labels, node)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                if _REAL in self._eval(node.value):
                    self.facts.tainted_returns.add(self.info.key)
            return
        # Evaluate bare expressions for their side effects (sink calls).
        if isinstance(node, ast.Expr):
            self._eval(node.value)
            return
        for child in ast.iter_child_nodes(node):
            self._stmt(child)

    def _assign(self, target: ast.expr, value: ast.expr) -> None:
        labels = self._eval(value)
        if isinstance(target, ast.Name):
            self.locals[target.id] = labels
            self.ledger_locals.discard(target.id)
            self.typed_locals.pop(target.id, None)
            if isinstance(value, ast.Call):
                if self._is_ledger_call(value):
                    self.ledger_locals.add(target.id)
                site = self._calls.get((value.lineno, value.col_offset))
                if site is not None and site.constructs is not None:
                    self.typed_locals[target.id] = site.constructs
        elif isinstance(target, ast.Attribute):
            self._attribute_store(target, labels, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.locals[element.id] = labels

    def _attribute_store(
        self, target: ast.Attribute, labels: Labels, anchor: ast.AST
    ) -> None:
        base = target.value
        if not isinstance(base, ast.Name):
            return
        if base.id == "self" and self.info.class_key is not None:
            if _REAL in labels:
                self.facts.tainted_fields.add((self.info.class_key, target.attr))
            return
        if base.id in self.ledger_locals:
            self._sink(
                labels, anchor, f"booked on a ledger record via .{target.attr}"
            )
            return
        typed = self.typed_locals.get(base.id)
        if typed is not None and _REAL in labels:
            self.facts.tainted_fields.add((typed, target.attr))

    # -- expression taint ------------------------------------------------
    def _eval(self, node: ast.expr) -> Labels:
        if isinstance(node, ast.Name):
            return self.locals.get(node.id, _CLEAN)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            labels: Labels = _CLEAN
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    labels = labels | self._eval(value.value)
            return labels
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels = _CLEAN
            for element in node.elts:
                labels = labels | self._eval(element)
            return labels
        if isinstance(node, ast.Dict):
            # A "metrics"-keyed entry is the sanctioned container for
            # measured values; it does not taint the enclosing dict (the
            # strict ledger dict sink still inspects it directly).
            labels = _CLEAN
            for dict_key, dict_value in zip(node.keys, node.values):
                if dict_value is None:
                    continue
                if (
                    isinstance(dict_key, ast.Constant)
                    and dict_key.value == "metrics"
                ):
                    continue
                labels = labels | self._eval(dict_value)
            return labels
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        return _CLEAN

    def _eval_attribute(self, node: ast.Attribute) -> Labels:
        if _is_ewma_name(node.attr) and _matches_any(self.info.module, _WALL_DOMAIN):
            return _REAL_ONLY
        base = node.value
        if isinstance(base, ast.Name):
            class_key: Optional[str] = None
            if base.id == "self":
                class_key = self.info.class_key
            else:
                class_key = self.typed_locals.get(base.id)
            if class_key is not None and self._field_tainted(class_key, node.attr):
                return _REAL_ONLY
        return _CLEAN

    def _field_tainted(self, class_key: str, attr: str) -> bool:
        """Field taint lookup, walking project base classes."""
        queue = [class_key]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            if (current, attr) in self.facts.tainted_fields:
                return True
            cls = self.graph.classes.get(current)
            if cls is None:
                continue
            for base in cls.bases:
                base_key = self.graph.resolve_class(cls.module, base)
                if base_key is not None:
                    queue.append(base_key)
        return False

    # -- calls -----------------------------------------------------------
    def _site(self, node: ast.Call) -> Optional[CallSite]:
        return self._calls.get((node.lineno, node.col_offset))

    def _is_ledger_call(self, node: ast.Call) -> bool:
        parts = _chain_parts(node.func)
        if parts is not None and "ledger" in parts[:-1]:
            return True
        site = self._site(node)
        if site is not None and site.target is not None:
            target = self.graph.functions.get(site.target)
            if target is not None and target.class_key is not None:
                cls = self.graph.classes.get(target.class_key)
                if cls is not None and cls.name == _LEDGER_CLASS:
                    return True
        return False

    def _eval_call(self, node: ast.Call) -> Labels:
        site = self._site(node)
        arg_labels = [self._eval(arg) for arg in node.args]
        kw_labels = [(kw.arg, self._eval(kw.value)) for kw in node.keywords]
        dotted = site.dotted if site is not None else None

        if self._is_ledger_call(node):
            method = (
                node.func.attr if isinstance(node.func, ast.Attribute) else "call"
            )
            for labels in arg_labels:
                self._sink(labels, node, f"passed to DurabilityLedger.{method}()")
            for _, labels in kw_labels:
                self._sink(labels, node, f"passed to DurabilityLedger.{method}()")

        if site is not None and site.target is not None:
            self._propagate_into(site.target, node, arg_labels, kw_labels)
        if site is not None and site.constructs is not None:
            self._construct_fields(site.constructs, arg_labels, kw_labels)

        if self._in_artefact_module() and dotted in ("json.dumps", "json.dump"):
            for labels in arg_labels:
                self._sink(labels, node, "serialized into an artefact json")

        if _is_wall_clock(dotted):
            return _REAL_ONLY
        if isinstance(node.func, ast.Name) and node.func.id in _PASSTHROUGH:
            combined: Labels = _CLEAN
            for labels in arg_labels:
                combined = combined | labels
            return combined
        if isinstance(node.func, ast.Attribute) and node.func.attr == "format":
            combined = self._eval(node.func.value)
            for labels in arg_labels:
                combined = combined | labels
            for _, labels in kw_labels:
                combined = combined | labels
            return combined
        if site is not None and site.target in self.facts.tainted_returns:
            return _REAL_ONLY
        return _CLEAN

    def _map_args(
        self,
        callee: FunctionInfo,
        arg_labels: List[Labels],
        kw_labels: List[Tuple[Optional[str], Labels]],
    ) -> List[Tuple[str, Labels]]:
        pairs: List[Tuple[str, Labels]] = []
        params = callee.params
        for index, labels in enumerate(arg_labels):
            if index < len(params):
                pairs.append((params[index], labels))
        for name, labels in kw_labels:
            if name is not None and name in params:
                pairs.append((name, labels))
        return pairs

    def _propagate_into(
        self,
        target_key: str,
        node: ast.Call,
        arg_labels: List[Labels],
        kw_labels: List[Tuple[Optional[str], Labels]],
    ) -> None:
        callee = self.graph.functions.get(target_key)
        if callee is None:
            return
        for param, labels in self._map_args(callee, arg_labels, kw_labels):
            if _REAL in labels:
                self.facts.tainted_params.add((callee.key, param))
            if (callee.key, param) in self.facts.param_sinks:
                self._sink(
                    labels,
                    node,
                    f"reaches a ledger/artefact sink inside "
                    f"{callee.module}.{callee.symbol}() via parameter {param!r}",
                )

    def _construct_fields(
        self,
        class_key: str,
        arg_labels: List[Labels],
        kw_labels: List[Tuple[Optional[str], Labels]],
    ) -> None:
        cls = self.graph.classes.get(class_key)
        if cls is None:
            return
        init_key = self.graph.mro_method(class_key, "__init__")
        if init_key is not None and init_key in self.graph.functions:
            fields: Tuple[str, ...] = self.graph.functions[init_key].params
        else:
            fields = cls.fields  # NamedTuple/dataclass declaration order
        for index, labels in enumerate(arg_labels):
            if _REAL in labels and index < len(fields):
                self.facts.tainted_fields.add((class_key, fields[index]))
        for name, labels in kw_labels:
            if _REAL in labels and name is not None and name in fields:
                self.facts.tainted_fields.add((class_key, name))

    # -- artefact dict sinks ---------------------------------------------
    def _in_artefact_module(self) -> bool:
        return _matches_any(self.info.module, _ARTEFACT_MODULES)

    def _artefact_dict_sinks(self, node: ast.AST) -> None:
        """Dict-literal sinks for bench/ledger report builders.

        In ``repro.experiments``: a function whose name contains ``bench``
        has its dict-literal values checked outside any ``"metrics"`` key;
        a function whose name contains ``ledger`` has every value checked
        (that dict *is* the determinism artefact). Evaluation uses the
        post-walk local environment — an approximation consistent with the
        linear model used everywhere else in this rule.
        """
        if not self._in_artefact_module():
            return
        name = self.info.name.lower()
        strict = "ledger" in name
        if "bench" not in name and not strict:
            return

        nested: Set[int] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Dict):
                for value in stmt.values:
                    if isinstance(value, ast.Dict):
                        nested.add(id(value))

        def check_dict(d: ast.Dict) -> None:
            for key_node, value in zip(d.keys, d.values):
                if value is None:
                    continue
                key_name = (
                    key_node.value
                    if isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)
                    else None
                )
                if not strict and key_name == "metrics":
                    continue  # sanctioned measurement section
                if isinstance(value, ast.Dict):
                    check_dict(value)
                else:
                    where = (
                        f"written to artefact field {key_name!r}"
                        if key_name is not None
                        else "written to an artefact field"
                    )
                    self._sink(self._eval(value), value, where)

        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Dict) and id(stmt) not in nested:
                check_dict(stmt)

    def _sink(self, labels: Labels, node: ast.AST, where: str) -> None:
        if _REAL in labels:
            self.hits.append(
                (
                    getattr(node, "lineno", self.info.lineno),
                    getattr(node, "col_offset", 0),
                    f"wall-clock/EWMA-derived value {where}; deterministic "
                    "artefacts must be pure functions of the seed (keep "
                    "measurements in the bench 'metrics' section or in "
                    "diagnostics outside the ledger)",
                )
            )
        for label in labels:
            if label.startswith("param:"):
                self.facts.param_sinks.add((self.info.key, label[6:]))
