"""CLI for the invariant linter: ``python -m repro.analysis``.

Exit codes: 0 = clean (all findings baselined or none), 1 = new findings
(or stale baseline entries), 2 = usage error (bad path, bad rule id,
bad baseline).

``--only`` selects a subset of rules by id; ``--paths`` narrows
*reporting* to files under the given comma-separated paths while the
whole tree is still analyzed (whole-program rules need the full call
graph to be sound); ``--stats`` prints run statistics — files parsed,
graph size, per-rule wall time — to stderr so ``--format json`` stdout
stays byte-stable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import (
    BaselineError,
    analyze_paths,
    load_baseline,
    render_json,
    render_stats,
    render_text,
    write_baseline,
)
from repro.analysis.rules import default_rules

#: Baseline location probed when ``--baseline`` is not given.
DEFAULT_BASELINE = Path("tools/analysis-baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json output is byte-stable across runs)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rule ids (comma-separated; see --list-rules)",
    )
    parser.add_argument(
        "--paths",
        dest="report_paths",
        default=None,
        metavar="PATH[,PATH...]",
        help="report findings only for files at/under these comma-separated "
        "paths; the whole tree is still analyzed so whole-program rules "
        "stay sound",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print run statistics (files parsed, call-graph size, per-rule "
        "timings) to stderr",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: "
        f"{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.scope) if rule.scope else "repo-wide"
            print(f"{rule.rule_id}  [{scope}]\n    {rule.description}")
        return 0

    if args.only is not None:
        wanted = [part.strip() for part in args.only.split(",") if part.strip()]
        known = {rule.rule_id: rule for rule in rules}
        unknown = [rule_id for rule_id in wanted if rule_id not in known]
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [known[rule_id] for rule_id in wanted]

    paths = args.paths or [Path("src/repro")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    report_paths: Optional[List[Path]] = None
    if args.report_paths is not None:
        report_paths = [
            Path(part.strip())
            for part in args.report_paths.split(",")
            if part.strip()
        ]

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = analyze_paths(
        paths,
        rules,
        root=Path.cwd(),
        baseline=baseline,
        report_paths=report_paths,
    )

    if args.stats:
        print(render_stats(report), file=sys.stderr)

    if args.write_baseline:
        write_baseline(report.findings, baseline_path)
        print(
            f"wrote {len(report.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    print(render_json(report) if args.format == "json" else render_text(report))
    return 0 if report.clean and not report.stale_baseline else 1


if __name__ == "__main__":
    sys.exit(main())
