"""Project symbol table and call graph for whole-program lint rules.

The per-file rules in :mod:`repro.analysis.rules` see one ``ast.Module``
at a time, so any invariant that spans a call — "this async def reaches
``time.sleep`` through two helpers", "this sense code is emitted in one
module and handled in another" — is invisible to them. This module builds
the shared substrate those flow rules query: one deterministic parse pass
over every file handed to the engine, producing

- a **symbol table**: every function/method (:class:`FunctionInfo`) and
  class (:class:`ClassInfo`) keyed by ``"<module>:<dotted symbol>"``,
  e.g. ``"repro.net.server:OsdServer._serve"``;
- a **call graph**: for every function, its :class:`CallSite` list with
  call targets resolved to project symbols where possible and to
  canonical dotted names (``"time.sleep"``) where not;
- light **type facts**: parameter/attribute annotations and
  constructor-typed locals, used to resolve ``self.router.submit()``
  style calls through one attribute hop.

Resolution is intentionally static and syntactic. What resolves:

- bare calls to functions visible in the lexical scope chain (nested
  defs, then module level, then imports);
- ``ClassName(...)`` constructor calls (edge to ``__init__`` when one is
  defined in the project);
- ``self.method()`` / ``cls.method()`` including methods inherited from
  project base classes (method resolution walks base classes
  breadth-first, left to right);
- ``module.func()``, ``module.Class.method()``, and imported-name calls,
  through the same import-alias canonicalization the per-file rules use;
- one-hop typed-attribute calls — ``self.x.m()`` where ``x`` has a class
  annotation (on the attribute or on the ``__init__`` parameter assigned
  to it) and ``var.m()`` where ``var`` is an annotated parameter, an
  annotated local, or a local bound to a constructor call.

Known limits (documented for rule authors and in docs/architecture.md):
values returned from functions are untyped, containers are opaque,
``super()`` and dynamic dispatch (``getattr``, callbacks stored in
collections) do not resolve, and re-bound names shadow nothing — the
*first* matching definition wins. Unresolved calls still appear as
:attr:`CallSite.dotted` so rules can match external names.

Everything is deterministic: files are processed in sorted order, every
exposed collection is insertion-ordered off that walk, and
:func:`build_project_graph` memoizes on the exact source bytes so the
engine, the CLI, and the tests share one graph per (content) snapshot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "SourceFile",
    "build_project_graph",
    "collect_aliases",
]


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted origin, same policy as RuleVisitor.

    ``import numpy as np`` maps ``np -> numpy``; ``from repro.osd.sense
    import SenseCode`` maps ``SenseCode -> repro.osd.sense.SenseCode``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                origin = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


@dataclass(frozen=True)
class SourceFile:
    """One input file, as handed to the graph builder.

    ``tree`` is an optional pre-parsed AST: the engine parses every file
    once for the per-file rules and shares the tree here, so the graph
    build adds no second parse pass.
    """

    path: str  # display path (repo-relative where possible)
    module: str  # dotted module name per engine.module_of
    source: str
    tree: Optional[ast.Module] = field(default=None, compare=False, repr=False)

    def fingerprint(self) -> Tuple[str, str, int, int]:
        return (self.path, self.module, len(self.source), hash(self.source))


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function body."""

    lineno: int
    col: int
    #: Resolved project function key ("module:Class.method"), or None.
    target: Optional[str]
    #: Canonical dotted name ("time.sleep", "repro.x.f") when derivable.
    dotted: Optional[str]
    #: Project class key when this call constructs a project class.
    constructs: Optional[str]
    node: ast.Call = field(repr=False, compare=False)


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    key: str  # "module:dotted.symbol"
    module: str
    path: str
    symbol: str  # dotted symbol within the module ("Cls.meth", "f.inner")
    name: str
    lineno: int
    col: int
    is_async: bool
    #: Key of the class this is a direct method of, else None.
    class_key: Optional[str]
    #: Parameter names in order, excluding self/cls.
    params: Tuple[str, ...]
    #: Parameter name -> raw dotted annotation ("ShardTransition", "x.Y").
    param_types: Dict[str, str]
    calls: List[CallSite] = field(default_factory=list)
    node: Optional[ast.AST] = field(default=None, repr=False, compare=False)


@dataclass
class ClassInfo:
    """One class definition in the project."""

    key: str  # "module:ClassName"
    module: str
    path: str
    name: str
    lineno: int
    #: Raw dotted base names after alias canonicalization.
    bases: Tuple[str, ...]
    #: Method name -> function key (direct methods only; see mro_method).
    methods: Dict[str, str] = field(default_factory=dict)
    #: Declared field order: class-body AnnAssign names first (the
    #: NamedTuple/dataclass constructor order), then __init__ self-assigns.
    fields: Tuple[str, ...] = ()
    #: Attribute name -> raw dotted type annotation.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module facts shared by rules: tree, aliases, top-level symbols."""

    module: str
    path: str
    tree: ast.Module = field(repr=False, compare=False)
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Module-level function name -> key.
    functions: Dict[str, str] = field(default_factory=dict)
    #: Module-level class name -> key.
    classes: Dict[str, str] = field(default_factory=dict)


class ProjectGraph:
    """The queryable whole-program view handed to flow rules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._callers: Dict[str, List[str]] = {}

    # -- topology --------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.functions)

    @property
    def edge_count(self) -> int:
        return sum(
            1
            for info in self.functions.values()
            for call in info.calls
            if call.target is not None
        )

    def callees(self, key: str) -> Tuple[str, ...]:
        info = self.functions.get(key)
        if info is None:
            return ()
        seen: List[str] = []
        for call in info.calls:
            if call.target is not None and call.target not in seen:
                seen.append(call.target)
        return tuple(seen)

    def callers(self, key: str) -> Tuple[str, ...]:
        return tuple(self._callers.get(key, ()))

    # -- symbol lookup ---------------------------------------------------
    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Resolve a canonical dotted name to a function key.

        Accepts ``pkg.mod.func``, ``pkg.mod.Class`` (-> ``__init__``), and
        ``pkg.mod.Class.method`` by longest-known-module prefix.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            info = self.modules.get(module)
            if info is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                if rest[0] in info.functions:
                    return info.functions[rest[0]]
                if rest[0] in info.classes:
                    return self.mro_method(info.classes[rest[0]], "__init__")
            elif len(rest) == 2 and rest[0] in info.classes:
                return self.mro_method(info.classes[rest[0]], rest[1])
            return None
        return None

    def resolve_class(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a raw dotted type name, as written in ``module``."""
        if not dotted:
            return None
        info = self.modules.get(module)
        if info is not None:
            root = dotted.split(".")[0]
            if dotted in info.classes:
                return info.classes[dotted]
            canonical = info.aliases.get(root)
            if canonical is not None:
                dotted = canonical + dotted[len(root):]
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            owner = self.modules.get(".".join(parts[:cut]))
            if owner is not None and len(parts) - cut == 1:
                return owner.classes.get(parts[cut])
        return None

    def mro_method(self, class_key: str, method: str) -> Optional[str]:
        """Find ``method`` on the class or its project bases (BFS, L-to-R)."""
        queue = [class_key]
        seen = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                base_key = self.resolve_class(cls.module, base)
                if base_key is not None:
                    queue.append(base_key)
        return None

    def attr_type_of(self, class_key: str, attr: str) -> Optional[str]:
        """Resolved class key of attribute ``attr``, searching bases too."""
        queue = [class_key]
        seen = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            raw = cls.attr_types.get(attr)
            if raw is not None:
                return self.resolve_class(cls.module, raw)
            for base in cls.bases:
                base_key = self.resolve_class(cls.module, base)
                if base_key is not None:
                    queue.append(base_key)
        return None

    # -- internals -------------------------------------------------------
    def _index_callers(self) -> None:
        self._callers = {}
        for key in self.functions:
            for callee in self.callees(key):
                self._callers.setdefault(callee, []).append(key)


# ----------------------------------------------------------------------
# Pass 1: symbol collection
# ----------------------------------------------------------------------
def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """Raw dotted name of an annotation, unwrapping Optional/quotes."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: parse the forward reference.
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        # Optional[T] / "Optional[T]" — keep the first simple argument.
        base = _annotation_name(node.value)
        if base in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
        return None
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _param_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _param_types(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Dict[str, str]:
    types: Dict[str, str] = {}
    args = node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("self", "cls"):
            continue
        name = _annotation_name(arg.annotation)
        if name is not None:
            types[arg.arg] = name
    return types


class _SymbolCollector(ast.NodeVisitor):
    """Pass 1: register every def/class under its dotted symbol."""

    def __init__(self, graph: ProjectGraph, module_info: ModuleInfo) -> None:
        self.graph = graph
        self.info = module_info
        self._symbols: List[str] = []
        self._class_keys: List[Optional[str]] = []

    def _key(self, name: str) -> str:
        dotted = ".".join(self._symbols + [name])
        return f"{self.info.module}:{dotted}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        key = self._key(node.name)
        bases = []
        aliases = self.info.aliases
        for base in node.bases:
            raw = _annotation_name(base)
            if raw is not None:
                root = raw.split(".")[0]
                canonical = aliases.get(root)
                if canonical is not None and raw != root:
                    raw = canonical + raw[len(root):]
                elif canonical is not None:
                    raw = canonical
                bases.append(raw)
        cls = ClassInfo(
            key=key,
            module=self.info.module,
            path=self.info.path,
            name=node.name,
            lineno=node.lineno,
            bases=tuple(bases),
        )
        self.graph.classes[key] = cls
        if not self._symbols:
            self.info.classes[node.name] = key
        _collect_class_fields(cls, node)
        self._symbols.append(node.name)
        self._class_keys.append(key)
        self.generic_visit(node)
        self._class_keys.pop()
        self._symbols.pop()

    def _visit_def(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        key = self._key(node.name)
        class_key = self._class_keys[-1] if self._class_keys else None
        info = FunctionInfo(
            key=key,
            module=self.info.module,
            path=self.info.path,
            symbol=".".join(self._symbols + [node.name]),
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_key=class_key,
            params=_param_names(node),
            param_types=_param_types(node),
            node=node,
        )
        self.graph.functions[key] = info
        if not self._symbols:
            self.info.functions[node.name] = key
        if class_key is not None:
            self.graph.classes[class_key].methods[node.name] = key
        self._symbols.append(node.name)
        self._class_keys.append(None)
        self.generic_visit(node)
        self._class_keys.pop()
        self._symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)


def _collect_class_fields(cls: ClassInfo, node: ast.ClassDef) -> None:
    """Field order + attribute annotations from the body and __init__."""
    fields: List[str] = []
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            name = item.target.id
            fields.append(name)
            raw = _annotation_name(item.annotation)
            if raw is not None:
                cls.attr_types.setdefault(name, raw)
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            param_types = _param_types(item)
            for stmt in ast.walk(item):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[str] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    annotation = _annotation_name(stmt.annotation)
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    name = target.attr
                    if name not in fields:
                        fields.append(name)
                    if annotation is not None:
                        cls.attr_types.setdefault(name, annotation)
                    elif isinstance(value, ast.Name) and value.id in param_types:
                        cls.attr_types.setdefault(name, param_types[value.id])
    cls.fields = tuple(fields)


# ----------------------------------------------------------------------
# Pass 2: call resolution
# ----------------------------------------------------------------------
@dataclass
class _Scope:
    """One lexical function frame: its local defs and typed locals."""

    function: FunctionInfo
    local_defs: Dict[str, str] = field(default_factory=dict)
    #: Local variable -> resolved class key.
    local_types: Dict[str, str] = field(default_factory=dict)


class _CallResolver(ast.NodeVisitor):
    """Pass 2: attach resolved CallSites to every FunctionInfo."""

    def __init__(self, graph: ProjectGraph, module_info: ModuleInfo) -> None:
        self.graph = graph
        self.info = module_info
        self._symbols: List[str] = []
        self._scopes: List[_Scope] = []
        self._class_keys: List[Optional[str]] = []

    # -- structure -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbols.append(node.name)
        key = f"{self.info.module}:{'.'.join(self._symbols)}"
        self._class_keys.append(key if key in self.graph.classes else None)
        self.generic_visit(node)
        self._class_keys.pop()
        self._symbols.pop()

    def _visit_def(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        key = f"{self.info.module}:{'.'.join(self._symbols + [node.name])}"
        function = self.graph.functions[key]
        scope = _Scope(function=function)
        # Direct nested defs are callable by bare name inside this body.
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.local_defs[item.name] = f"{key}.{item.name}"
        # Annotated parameters type their locals.
        for param, raw in function.param_types.items():
            resolved = self.graph.resolve_class(self.info.module, raw)
            if resolved is not None:
                scope.local_types[param] = resolved
        self._symbols.append(node.name)
        self._scopes.append(scope)
        self._class_keys.append(None)
        self.generic_visit(node)
        self._class_keys.pop()
        self._scopes.pop()
        self._symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    # -- typed locals ----------------------------------------------------
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._scopes and isinstance(node.target, ast.Name):
            raw = _annotation_name(node.annotation)
            if raw is not None:
                resolved = self.graph.resolve_class(self.info.module, raw)
                if resolved is not None:
                    self._scopes[-1].local_types[node.target.id] = resolved
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # `x = ClassName(...)` types x for one-hop method resolution.
        if (
            self._scopes
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            constructed = self._constructed_class(node.value.func)
            if constructed is not None:
                self._scopes[-1].local_types[node.targets[0].id] = constructed
        self.generic_visit(node)

    def _constructed_class(self, func: ast.expr) -> Optional[str]:
        dotted = self._canonical(func)
        if dotted is None:
            return None
        return self.graph.resolve_class(self.info.module, dotted)

    # -- call resolution -------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._scopes:
            target, dotted, constructs = self._resolve(node.func)
            self._scopes[-1].function.calls.append(
                CallSite(
                    lineno=node.lineno,
                    col=node.col_offset,
                    target=target,
                    dotted=dotted,
                    constructs=constructs,
                    node=node,
                )
            )
        self.generic_visit(node)

    def _canonical(self, func: ast.expr) -> Optional[str]:
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.info.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def _enclosing_class(self) -> Optional[str]:
        for key in reversed(self._class_keys):
            if key is not None:
                return key
        # Method frames push None; recover the class of the current function.
        if self._scopes:
            return self._scopes[-1].function.class_key
        return None

    def _resolve(
        self, func: ast.expr
    ) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        """-> (target function key, canonical dotted name, constructed class)."""
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id)
        if isinstance(func, ast.Attribute):
            chain: List[str] = []
            node: ast.expr = func
            while isinstance(node, ast.Attribute):
                chain.append(node.attr)
                node = node.value
            chain.reverse()
            if isinstance(node, ast.Name):
                return self._resolve_chain(node.id, chain)
        return None, None, None

    def _resolve_bare(
        self, name: str
    ) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        for scope in reversed(self._scopes):
            if name in scope.local_defs:
                return scope.local_defs[name], None, None
        if name in self.info.functions:
            return self.info.functions[name], None, None
        if name in self.info.classes:
            class_key = self.info.classes[name]
            return self.graph.mro_method(class_key, "__init__"), None, class_key
        dotted = self.info.aliases.get(name, name)
        target = self.graph.resolve_dotted(dotted)
        constructs = self.graph.resolve_class(self.info.module, dotted)
        return target, dotted, constructs

    def _resolve_chain(
        self, root: str, chain: List[str]
    ) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        method = chain[-1]
        if root in ("self", "cls"):
            class_key = self._scopes[-1].function.class_key if self._scopes else None
            if class_key is None:
                class_key = self._enclosing_class()
            if class_key is not None:
                if len(chain) == 1:
                    return self.graph.mro_method(class_key, method), None, None
                if len(chain) == 2:
                    attr_cls = self.graph.attr_type_of(class_key, chain[0])
                    if attr_cls is not None:
                        return self.graph.mro_method(attr_cls, method), None, None
            return None, None, None
        # Typed local: var.m() or var.attr.m().
        for scope in reversed(self._scopes):
            if root in scope.local_types:
                cls_key: Optional[str] = scope.local_types[root]
                for attr in chain[:-1]:
                    if cls_key is None:
                        break
                    cls_key = self.graph.attr_type_of(cls_key, attr)
                if cls_key is not None:
                    return self.graph.mro_method(cls_key, method), None, None
                return None, None, None
        dotted_root = self.info.aliases.get(root, root)
        dotted = ".".join([dotted_root] + chain)
        target = self.graph.resolve_dotted(dotted)
        constructs = self.graph.resolve_class(self.info.module, dotted)
        return target, dotted, constructs


# ----------------------------------------------------------------------
# Builder + cache
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple[Tuple[str, str, int, int], ...], ProjectGraph] = {}
_CACHE_LIMIT = 8


def build_project_graph(files: Sequence[SourceFile]) -> ProjectGraph:
    """Parse + resolve ``files`` into a ProjectGraph (memoized on content).

    The cache key is the exact (path, module, source) set, so repeated
    runs inside one process (engine + tests) share a single graph while
    any source edit invalidates it. Output is deterministic: callers must
    pass files in a stable order (the engine passes them sorted).
    """
    key = tuple(f.fingerprint() for f in files)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    graph = _build(files)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = graph
    return graph


def clear_graph_cache() -> None:
    """Drop memoized graphs (test hook)."""
    _CACHE.clear()


def _build(files: Iterable[SourceFile]) -> ProjectGraph:
    graph = ProjectGraph()
    parsed: List[Tuple[SourceFile, ast.Module]] = []
    for source_file in files:
        tree = source_file.tree
        if tree is None:
            try:
                tree = ast.parse(source_file.source, filename=source_file.path)
            except SyntaxError:
                continue  # the engine reports parse errors separately
        parsed.append((source_file, tree))
    for source_file, tree in parsed:
        info = ModuleInfo(
            module=source_file.module,
            path=source_file.path,
            tree=tree,
            aliases=collect_aliases(tree),
        )
        # Last write wins on duplicate module names (mirrors import rules).
        graph.modules[source_file.module] = info
        _SymbolCollector(graph, info).visit(tree)
    for source_file, tree in parsed:
        _CallResolver(graph, graph.modules[source_file.module]).visit(tree)
    graph._index_callers()
    return graph
