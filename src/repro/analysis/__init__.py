"""AST-based invariant linter for the repro codebase.

``python -m repro.analysis`` checks the project's own invariants — the
ones generic tools cannot know about:

- **determinism** — no wall clock / ambient entropy; the simulation core
  takes time from :class:`~repro.sim.clock.SimClock` and randomness from
  explicitly seeded RNG objects;
- **async-blocking** — nothing blocks the :mod:`repro.net` event loop,
  and no coroutine goes unawaited;
- **broad-except** / **sense-policy** — no Exception-wide catches, and
  the OSD target converts failures to T10 sense codes rather than
  raising to the wire loop;
- **seed-plumbing** — RNG state enters ``faults/`` and ``sim/`` as an
  explicit parameter, never a ``None`` default.

See :mod:`repro.analysis.engine` for the machinery (suppressions,
baseline, reporters) and :mod:`repro.analysis.rules` for the rule set.
"""

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    Rule,
    RuleVisitor,
    analyze_paths,
    analyze_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "RuleVisitor",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "load_baseline",
    "render_json",
    "render_text",
    "write_baseline",
]
