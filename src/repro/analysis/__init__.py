"""AST-based invariant linter for the repro codebase.

``python -m repro.analysis`` checks the project's own invariants — the
ones generic tools cannot know about.

Per-file rules (one module at a time):

- **determinism** — no wall clock / ambient entropy; the simulation core
  takes time from :class:`~repro.sim.clock.SimClock` and randomness from
  explicitly seeded RNG objects;
- **async-blocking** — nothing blocks the :mod:`repro.net` event loop,
  and no coroutine goes unawaited;
- **broad-except** / **sense-policy** — no Exception-wide catches, and
  the OSD target converts failures to T10 sense codes rather than
  raising to the wire loop;
- **seed-plumbing** — RNG state enters ``faults/`` and ``sim/`` as an
  explicit parameter, never a ``None`` default.

Whole-program rules (over the project call graph built by
:mod:`repro.analysis.graph`):

- **transitive-blocking** — no sync helper reachable from an event-loop
  ``async def`` makes a blocking call, at any call-graph depth;
- **await-interleaving** — no stale read-modify-write of shared object
  state across an ``await`` scheduling point;
- **sense-exhaustive** — every ``SenseCode`` the server tier emits is
  handled (or visibly declared pass-through) in the client tier;
- **determinism-taint** — wall-clock/EWMA-derived values never flow into
  ``DurabilityLedger`` bookings or deterministic artefact fields.

See :mod:`repro.analysis.engine` for the machinery (suppressions,
baseline, reporters, run stats) and :mod:`repro.analysis.rules` for the
rule set.
"""

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    ProjectRule,
    Rule,
    RuleVisitor,
    RunStats,
    analyze_paths,
    analyze_source,
    load_baseline,
    render_json,
    render_stats,
    render_text,
    write_baseline,
)
from repro.analysis.graph import ProjectGraph, SourceFile, build_project_graph
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "RuleVisitor",
    "RunStats",
    "SourceFile",
    "analyze_paths",
    "analyze_source",
    "build_project_graph",
    "default_rules",
    "load_baseline",
    "render_json",
    "render_stats",
    "render_text",
    "write_baseline",
]
