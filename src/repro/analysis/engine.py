"""The invariant-lint engine: rules, suppressions, baseline, reporters.

The codebase rests on invariants that neither ruff nor mypy can see:

- simulation results must be a pure function of the seed (no wall clock,
  no ambient entropy) so fault campaigns stay byte-identical per seed;
- the :mod:`repro.net` asyncio layer must never block the event loop;
- the OSD target maps internal failures to T10 sense codes (paper
  Table III) instead of leaking exceptions onto the wire;
- anything in ``faults/`` or ``sim/`` that consumes randomness must be
  handed its seed explicitly.

This module is the project-specific checker that enforces them. It is a
thin AST pipeline: every rule is an :class:`ast.NodeVisitor` subclass
registered with an id, each Python file is parsed once and handed to every
rule whose scope covers it, and the resulting :class:`Finding` list flows
through inline suppressions (``# repro: allow[rule-id]``) and an optional
committed baseline before reporting.

Design points:

- **Scoping is by dotted module path**, derived from the file path (the
  part at and below the last ``repro`` directory), so rules read like
  the invariants they encode: "no wall clock under ``repro.sim``".
- **Baseline entries are line-independent** — keyed on
  ``(rule, path, enclosing symbol, message)`` — so unrelated edits above
  a grandfathered finding do not resurrect it.
- **Reports are deterministic**: files are walked in sorted order,
  findings are sorted, and the JSON reporter emits sorted keys, so CI
  output is stable across runs and machines.
"""

from __future__ import annotations

import ast
import json
import re
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph import ProjectGraph, SourceFile, build_project_graph

__all__ = [
    "AnalysisReport",
    "BaselineError",
    "Finding",
    "ProjectRule",
    "Rule",
    "RuleVisitor",
    "RunStats",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_baseline",
    "module_of",
    "render_json",
    "render_stats",
    "render_text",
    "suppressed_lines",
    "write_baseline",
]

#: Inline suppression syntax. Matches ``# repro: allow[rule-id]`` and
#: ``# repro: allow[rule-a, rule-b]`` anywhere in a comment; the
#: suppression covers findings on its own line and on the line below it
#: (so it can sit as a standalone comment above the offending statement).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-,\s]+)\]")

_BASELINE_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Dotted name of the enclosing class/function, or "" at module level.
    symbol: str = ""

    def key(self) -> Tuple[str, str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule_id, self.path, self.symbol, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "symbol": self.symbol,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`description`, and optionally
    :attr:`scope`/:attr:`exempt` (dotted-module prefixes), then implement
    :meth:`check`.
    """

    rule_id: str = ""
    description: str = ""
    #: Dotted-module prefixes the rule applies to. Empty = every module.
    scope: Tuple[str, ...] = ()
    #: Dotted modules exempt from the rule (exact match or subpackage).
    exempt: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if _matches_any(module, self.exempt):
            return False
        return not self.scope or _matches_any(module, self.scope)

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.rule_id!r})"


def _matches_any(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class ProjectRule(Rule):
    """Base class for whole-program (flow-aware) rules.

    Where a :class:`Rule` sees one file's AST, a ProjectRule sees the
    :class:`~repro.analysis.graph.ProjectGraph` built over *every* file in
    the run — symbol table, call edges, type facts — and returns findings
    anchored to concrete source locations. The engine builds the graph
    once per run and shares it across all project rules; per-line
    ``# repro: allow[rule-id]`` suppressions and the committed baseline
    apply to project findings exactly as they do to per-file ones.

    ``scope``/``exempt`` are not consulted for file dispatch (the rule
    sees everything); rules scope their *reports* internally.
    """

    def check(self, module: str, tree: ast.Module, path: str) -> List[Finding]:
        raise NotImplementedError(
            f"{self.rule_id} is a whole-program rule; use check_project()"
        )

    def check_project(self, graph: ProjectGraph) -> List[Finding]:
        raise NotImplementedError


class RuleVisitor(ast.NodeVisitor):
    """Shared visitor base: symbol stack, import-alias map, reporting.

    Tracks the enclosing class/function stack so findings carry a stable
    ``symbol`` (used by baseline matching), and resolves ``import x as y``
    / ``from x import y`` aliases so rules can match calls by their
    canonical dotted name regardless of local spelling.
    """

    def __init__(self, rule: Rule, module: str, path: str) -> None:
        self.rule = rule
        self.module = module
        self.path = path
        self.findings: List[Finding] = []
        self._symbols: List[str] = []
        #: local name -> canonical dotted origin ("np" -> "numpy",
        #: "Random" -> "random.Random").
        self.aliases: Dict[str, str] = {}

    # -- alias collection ------------------------------------------------
    def collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    origin = item.name if item.asname else item.name.split(".")[0]
                    self.aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    self.aliases[local] = f"{node.module}.{item.name}"

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its canonical dotted name."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- symbol stack ----------------------------------------------------
    def _push(self, name: str) -> None:
        self._symbols.append(name)

    def _pop(self) -> None:
        self._symbols.pop()

    @property
    def symbol(self) -> str:
        return ".".join(self._symbols)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._push(node.name)
        self.generic_visit(node)
        self._pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._push(node.name)
        self.generic_visit(node)
        self._pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._push(node.name)
        self.generic_visit(node)
        self._pop()

    # -- reporting -------------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule_id=self.rule.rule_id,
                message=message,
                symbol=self.symbol,
            )
        )


# ----------------------------------------------------------------------
# File discovery and module naming
# ----------------------------------------------------------------------
def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    files: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in candidate.parts
                ):
                    continue
                files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def module_of(path: Path) -> str:
    """Dotted module name for scoping: the path at and below ``repro``.

    ``src/repro/sim/clock.py`` -> ``repro.sim.clock``. Files outside any
    ``repro`` directory get their bare stem, which scoped rules ignore.
    """
    parts = list(Path(path).parts)
    stem = Path(path).stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[anchor:-1])
        if stem != "__init__":
            dotted.append(stem)
        return ".".join(dotted)
    return stem


def _display_path(path: Path, root: Optional[Path]) -> str:
    path = Path(path)
    if root is not None:
        try:
            return path.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed there.

    A ``# repro: allow[rule-id]`` comment suppresses matching findings on
    its own line and on the immediately following line.
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        for covered in (lineno, lineno + 1):
            suppressed.setdefault(covered, set()).update(ids)
    return suppressed


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def analyze_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Finding]:
    """Run every in-scope rule over one file's source text."""
    display = _display_path(path, root)
    module = module_of(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule_id="parse-error",
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue  # whole-program rules need analyze_paths
        if rule.applies_to(module):
            findings.extend(rule.check(module, tree, display))
    allow = suppressed_lines(source)
    return sorted(
        f for f in findings if f.rule_id not in allow.get(f.line, set())
    )


@dataclass
class RunStats:
    """Instrumentation for one engine run (``--stats``).

    Timings are host wall time and deliberately excluded from the JSON
    findings payload, which must stay byte-identical across runs.
    """

    files_parsed: int = 0
    graph_nodes: int = 0
    graph_edges: int = 0
    graph_built: bool = False
    #: rule id -> cumulative check seconds across all files.
    rule_seconds: Dict[str, float] = field(default_factory=dict)


@dataclass
class AnalysisReport:
    """Outcome of one engine run."""

    findings: List[Finding]
    baselined: int = 0
    #: Baseline entries that matched nothing — stale, should be removed.
    stale_baseline: List[Tuple[str, str, str, str]] = field(default_factory=list)
    files_checked: int = 0
    stats: RunStats = field(default_factory=RunStats)

    @property
    def clean(self) -> bool:
        return not self.findings


def analyze_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
    baseline: Optional["Counter[Tuple[str, str, str, str]]"] = None,
    report_paths: Optional[Sequence[Path]] = None,
) -> AnalysisReport:
    """Analyze files/directories, subtracting baselined findings.

    Every file is parsed exactly once: the tree feeds the per-file rules
    directly and rides into the project graph (built only when the rule
    set contains :class:`ProjectRule` instances) for the flow rules.

    ``report_paths`` narrows *reporting* without narrowing analysis: the
    whole input set is still parsed (so the call graph and cross-module
    rules see the full program), but findings are kept only for files
    under one of the given paths. This is the CLI's ``--paths`` filter.
    """
    files = iter_python_files(paths)
    per_file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    stats = RunStats(
        files_parsed=len(files),
        rule_seconds={r.rule_id: 0.0 for r in rules},
    )
    findings: List[Finding] = []
    sources: List[SourceFile] = []
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        display = _display_path(file_path, root)
        module = module_of(file_path)
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=display,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    rule_id="parse-error",
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        allow = suppressed_lines(source)
        suppressions[display] = allow
        sources.append(SourceFile(path=display, module=module, source=source, tree=tree))
        for rule in per_file_rules:
            if not rule.applies_to(module):
                continue
            started = time.perf_counter()
            checked = rule.check(module, tree, display)
            stats.rule_seconds[rule.rule_id] += time.perf_counter() - started
            findings.extend(
                f for f in checked if f.rule_id not in allow.get(f.line, set())
            )
    if project_rules:
        graph = build_project_graph(sources)
        stats.graph_built = True
        stats.graph_nodes = graph.node_count
        stats.graph_edges = graph.edge_count
        for rule in project_rules:
            started = time.perf_counter()
            checked = rule.check_project(graph)
            stats.rule_seconds[rule.rule_id] += time.perf_counter() - started
            findings.extend(
                f
                for f in checked
                if f.rule_id not in suppressions.get(f.path, {}).get(f.line, set())
            )
    if report_paths is not None:
        keep = {
            _display_path(f, root)
            for f in iter_python_files(report_paths)
        }
        prefixes = tuple(
            _display_path(p, root).rstrip("/") + "/"
            for p in report_paths
            if Path(p).is_dir()
        )
        findings = [
            f
            for f in findings
            if f.path in keep or f.path.startswith(prefixes)
        ]
    findings.sort()
    if not baseline:
        return AnalysisReport(
            findings=findings, files_checked=len(files), stats=stats
        )
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    baselined = 0
    for finding in findings:
        if remaining.get(finding.key(), 0) > 0:
            remaining[finding.key()] -= 1
            baselined += 1
        else:
            fresh.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return AnalysisReport(
        findings=fresh,
        baselined=baselined,
        stale_baseline=stale,
        files_checked=len(files),
        stats=stats,
    )


# ----------------------------------------------------------------------
# Baseline file
# ----------------------------------------------------------------------
class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


def load_baseline(path: Path) -> "Counter[Tuple[str, str, str, str]]":
    """Load a committed baseline into a key -> count multiset."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"malformed baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} must be a JSON object with version {_BASELINE_VERSION}"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    counter: "Counter[Tuple[str, str, str, str]]" = Counter()
    for entry in entries:
        try:
            counter[
                (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry.get("symbol", "")),
                    str(entry["message"]),
                )
            ] += 1
        except (KeyError, TypeError) as exc:
            raise BaselineError(f"baseline {path}: bad entry {entry!r}: {exc}") from None
    return counter


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Write the current findings as the new grandfathered baseline."""
    entries = [
        dict(zip(("rule", "path", "symbol", "message"), key))
        for key in sorted(f.key() for f in findings)
    ]
    payload = {"version": _BASELINE_VERSION, "findings": entries}
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule_id}: {f.message}"
        + (f" [{f.symbol}]" if f.symbol else "")
        for f in report.findings
    ]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        f" ({report.baselined} baselined)"
    )
    if report.stale_baseline:
        summary += f"; {len(report.stale_baseline)} stale baseline entr(y/ies)"
        for rule_id, path, symbol, message in report.stale_baseline:
            lines.append(
                f"stale baseline entry: {rule_id} at {path}"
                + (f" [{symbol}]" if symbol else "")
                + f": {message}"
            )
    lines.append(summary)
    return "\n".join(lines)


def render_stats(report: AnalysisReport) -> str:
    """The ``--stats`` summary: parse/graph sizes and per-rule timings.

    Rendered separately from the findings report (and printed to stderr
    by the CLI) because it contains wall timings, which must never leak
    into the byte-stable JSON findings payload.
    """
    stats = report.stats
    lines = [f"files parsed: {stats.files_parsed}"]
    if stats.graph_built:
        lines.append(
            f"call graph: {stats.graph_nodes} nodes, {stats.graph_edges} edges"
        )
    else:
        lines.append("call graph: not built (no whole-program rules in the run)")
    for rule_id in sorted(stats.rule_seconds):
        lines.append(f"rule {rule_id}: {stats.rule_seconds[rule_id] * 1000:.1f} ms")
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report; byte-stable across runs for identical input."""
    payload = {
        "version": _BASELINE_VERSION,
        "files_checked": report.files_checked,
        "baselined": report.baselined,
        "stale_baseline": [
            {"rule": k[0], "path": k[1], "symbol": k[2], "message": k[3]}
            for k in report.stale_baseline
        ],
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
