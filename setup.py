"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which shell out to ``bdist_wheel``) fail. Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which needs neither. All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
